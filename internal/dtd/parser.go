package dtd

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// Parse reads a DTD (external subset syntax) from r.
func Parse(r io.Reader) (*DTD, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(data))
}

// ParseString parses DTD text.
func ParseString(src string) (*DTD, error) {
	p := &parser{src: src, dtd: &DTD{
		Elements: make(map[string]*ElementDecl),
		Attrs:    make(map[string][]AttDef),
	}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.dtd, nil
}

type parser struct {
	src string
	pos int
	dtd *DTD
}

func (p *parser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("dtd: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *parser) consume(prefix string) bool {
	if strings.HasPrefix(p.src[p.pos:], prefix) {
		p.pos += len(prefix)
		return true
	}
	return false
}

func (p *parser) skipUntil(marker string) error {
	i := strings.Index(p.src[p.pos:], marker)
	if i < 0 {
		return p.errf("unterminated construct, expected %q", marker)
	}
	p.pos += i + len(marker)
	return nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *parser) name() (string, error) {
	start := p.pos
	for !p.eof() && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a name, found %q", p.rest(12))
	}
	return p.src[start:p.pos], nil
}

func (p *parser) rest(n int) string {
	end := p.pos + n
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *parser) run() error {
	for {
		p.skipSpace()
		if p.eof() {
			return nil
		}
		switch {
		case p.consume("<!--"):
			if err := p.skipUntil("-->"); err != nil {
				return err
			}
		case p.consume("<?"):
			if err := p.skipUntil("?>"); err != nil {
				return err
			}
		case p.consume("<!ELEMENT"):
			if err := p.elementDecl(); err != nil {
				return err
			}
		case p.consume("<!ATTLIST"):
			if err := p.attlistDecl(); err != nil {
				return err
			}
		case p.consume("<!ENTITY"), p.consume("<!NOTATION"):
			if err := p.skipUntil(">"); err != nil {
				return err
			}
		case p.peek() == '%':
			// Parameter entity reference; not expanded.
			p.pos++
			if err := p.skipUntil(";"); err != nil {
				return err
			}
		default:
			return p.errf("unexpected input %q", p.rest(20))
		}
	}
}

func (p *parser) elementDecl() error {
	p.skipSpace()
	name, err := p.name()
	if err != nil {
		return err
	}
	p.skipSpace()
	decl := &ElementDecl{Name: name}
	switch {
	case p.consume("EMPTY"):
		decl.Content = ContentEmpty
	case p.consume("ANY"):
		decl.Content = ContentAny
	case p.peek() == '(':
		if err := p.contentSpec(decl); err != nil {
			return err
		}
	default:
		return p.errf("element %s: expected content model, found %q", name, p.rest(12))
	}
	p.skipSpace()
	if !p.consume(">") {
		return p.errf("element %s: expected '>', found %q", name, p.rest(12))
	}
	if _, dup := p.dtd.Elements[name]; dup {
		return p.errf("element %s declared twice", name)
	}
	p.dtd.Elements[name] = decl
	p.dtd.order = append(p.dtd.order, name)
	return nil
}

// contentSpec parses either a mixed-content model or an element content
// model, starting at '('.
func (p *parser) contentSpec(decl *ElementDecl) error {
	save := p.pos
	p.pos++ // consume '('
	p.skipSpace()
	if p.consume("#PCDATA") {
		p.skipSpace()
		var mixed []string
		for p.consume("|") {
			p.skipSpace()
			n, err := p.name()
			if err != nil {
				return err
			}
			mixed = append(mixed, n)
			p.skipSpace()
		}
		if !p.consume(")") {
			return p.errf("element %s: expected ')' in mixed content", decl.Name)
		}
		star := p.consume("*")
		if len(mixed) > 0 {
			if !star {
				return p.errf("element %s: mixed content with names requires ')*'", decl.Name)
			}
			decl.Content = ContentMixed
			decl.Mixed = mixed
		} else {
			decl.Content = ContentPCDATA
		}
		return nil
	}
	// Element content: back up and parse a particle group.
	p.pos = save
	model, err := p.particle(decl.Name)
	if err != nil {
		return err
	}
	decl.Content = ContentChildren
	decl.Model = model
	return nil
}

// particle parses a cp: a name or a parenthesized group, with an optional
// quantifier.
func (p *parser) particle(elem string) (*Particle, error) {
	p.skipSpace()
	var part *Particle
	if p.peek() == '(' {
		p.pos++
		first, err := p.particle(elem)
		if err != nil {
			return nil, err
		}
		kids := []*Particle{first}
		kind := ParticleKind(0)
		sep := byte(0)
		for {
			p.skipSpace()
			c := p.peek()
			if c == ')' {
				p.pos++
				break
			}
			if c != ',' && c != '|' {
				return nil, p.errf("element %s: expected ',', '|' or ')', found %q", elem, p.rest(8))
			}
			if sep == 0 {
				sep = c
				if c == ',' {
					kind = PSeq
				} else {
					kind = PChoice
				}
			} else if sep != c {
				return nil, p.errf("element %s: mixed ',' and '|' in one group", elem)
			}
			p.pos++
			next, err := p.particle(elem)
			if err != nil {
				return nil, err
			}
			kids = append(kids, next)
		}
		if sep == 0 {
			kind = PSeq
		}
		part = &Particle{Kind: kind, Children: kids}
	} else {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		part = &Particle{Kind: PName, Name: n}
	}
	switch p.peek() {
	case '?':
		part.Quant = Opt
		p.pos++
	case '*':
		part.Quant = Star
		p.pos++
	case '+':
		part.Quant = Plus
		p.pos++
	}
	return part, nil
}

func (p *parser) attlistDecl() error {
	p.skipSpace()
	elem, err := p.name()
	if err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.consume(">") {
			return nil
		}
		if p.eof() {
			return p.errf("unterminated ATTLIST for %s", elem)
		}
		att := AttDef{Element: elem}
		att.Name, err = p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		// Attribute type: keyword, or enumeration in parentheses.
		if p.peek() == '(' {
			start := p.pos
			if err := p.skipUntil(")"); err != nil {
				return err
			}
			att.Type = p.src[start:p.pos]
		} else {
			att.Type, err = p.name()
			if err != nil {
				return err
			}
			if att.Type == "NOTATION" {
				p.skipSpace()
				start := p.pos
				if err := p.skipUntil(")"); err != nil {
					return err
				}
				att.Type += " " + p.src[start:p.pos]
			}
		}
		p.skipSpace()
		switch {
		case p.consume("#REQUIRED"):
			att.Required = true
		case p.consume("#IMPLIED"):
			att.Implied = true
		case p.consume("#FIXED"):
			att.Fixed = true
			p.skipSpace()
			att.Default, err = p.quoted()
			if err != nil {
				return err
			}
		default:
			att.Default, err = p.quoted()
			if err != nil {
				return err
			}
		}
		p.dtd.Attrs[elem] = append(p.dtd.Attrs[elem], att)
	}
}

func (p *parser) quoted() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", p.errf("expected quoted literal, found %q", p.rest(8))
	}
	p.pos++
	start := p.pos
	i := strings.IndexByte(p.src[p.pos:], q)
	if i < 0 {
		return "", p.errf("unterminated literal")
	}
	p.pos += i + 1
	return p.src[start : p.pos-1], nil
}
