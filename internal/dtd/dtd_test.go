package dtd

import (
	"strings"
	"testing"
)

const retailerDTD = `
<!-- retailer catalog -->
<!ELEMENT retailer (name, product, store*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT product (#PCDATA)>
<!ELEMENT store (name, state, city, merchandises)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT merchandises (clothes+)>
<!ELEMENT clothes (category?, fitting?, situation?)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT fitting (#PCDATA)>
<!ELEMENT situation (#PCDATA)>
<!ATTLIST store id ID #REQUIRED
                region CDATA "south">
`

func TestParseRetailerDTD(t *testing.T) {
	d, err := ParseString(retailerDTD)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(d.Elements) != 11 {
		t.Errorf("elements = %d, want 11", len(d.Elements))
	}
	stars := d.StarNodes()
	if !stars["store"] || !stars["clothes"] {
		t.Errorf("star nodes = %v, want store and clothes", stars)
	}
	for _, notStar := range []string{"retailer", "name", "city", "merchandises", "category"} {
		if stars[notStar] {
			t.Errorf("%s wrongly detected as star node", notStar)
		}
	}
	if !d.PCDATAOnly("city") || d.PCDATAOnly("store") {
		t.Error("PCDATAOnly misclassifies")
	}
	atts := d.Attrs["store"]
	if len(atts) != 2 {
		t.Fatalf("store attrs = %v", atts)
	}
	if !atts[0].Required || atts[0].Type != "ID" {
		t.Errorf("id attdef = %+v", atts[0])
	}
	if atts[1].Default != "south" {
		t.Errorf("region default = %+v", atts[1])
	}
}

func TestContentModelShapes(t *testing.T) {
	d, err := ParseString(`
<!ELEMENT a ((b | c)+, d?, (e, f)*)>
<!ELEMENT g (h)>
<!ELEMENT i EMPTY>
<!ELEMENT j ANY>
<!ELEMENT k (#PCDATA | b)*>
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	a := d.Elements["a"]
	if a.Content != ContentChildren {
		t.Fatalf("a content = %v", a.Content)
	}
	if got := a.Model.String(); got != "((b | c)+, d?, (e, f)*)" {
		t.Errorf("model = %s", got)
	}
	rep := d.StarChildren("a")
	for _, want := range []string{"b", "c", "e", "f"} {
		if !rep[want] {
			t.Errorf("%s should repeat under a: %v", want, rep)
		}
	}
	if rep["d"] {
		t.Error("d must not repeat under a")
	}
	if d.Elements["i"].Content != ContentEmpty || d.Elements["j"].Content != ContentAny {
		t.Error("EMPTY/ANY misparsed")
	}
	k := d.Elements["k"]
	if k.Content != ContentMixed || len(k.Mixed) != 1 || k.Mixed[0] != "b" {
		t.Errorf("mixed = %+v", k)
	}
	// Mixed content children are repeatable.
	if !d.StarChildren("k")["b"] {
		t.Error("mixed child must be repeatable")
	}
}

func TestDuplicateNameRepeats(t *testing.T) {
	d, err := ParseString(`<!ELEMENT a (b, c, b)>`)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.StarChildren("a")
	if !rep["b"] || rep["c"] {
		t.Errorf("rep = %v", rep)
	}
}

func TestGroupQuantifierPropagates(t *testing.T) {
	d, err := ParseString(`<!ELEMENT a ((b, c))* ><!ELEMENT z ((x, y))>`)
	// Note: XML forbids a quantifier after the outer parens of the whole
	// content spec in some readings; we accept it since real DTDs use it.
	if err != nil {
		t.Fatal(err)
	}
	rep := d.StarChildren("a")
	if !rep["b"] || !rep["c"] {
		t.Errorf("group star must propagate: %v", rep)
	}
	rep = d.StarChildren("z")
	if rep["x"] || rep["y"] {
		t.Errorf("no star: %v", rep)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<!ELEMENT a (b`,                       // unterminated
		`<!ELEMENT a (b,|c)>`,                  // bad separator use
		`<!ELEMENT a (b | c, d)>`,              // mixed separators
		`<!ELEMENT (b)>`,                       // missing name
		`<!ELEMENT a (#PCDATA | b)>`,           // mixed without *
		`<!ATTLIST a b CDATA>`,                 // missing default
		`<!BOGUS a>`,                           // unknown decl
		`<!ELEMENT a EMPTY><!ELEMENT a EMPTY>`, // duplicate
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", c)
		}
	}
}

func TestSkipsEntitiesAndComments(t *testing.T) {
	d, err := ParseString(`
<!-- header -->
<!ENTITY % common "name, id">
<!ELEMENT a (b*)>
<?pi data?>
%common;
<!NOTATION n SYSTEM "x">
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(d.Elements) != 1 || d.Elements["a"] == nil {
		t.Errorf("elements = %v", d.ElementNames())
	}
}

func TestParseReader(t *testing.T) {
	d, err := Parse(strings.NewReader(`<!ELEMENT a (b+)>`))
	if err != nil {
		t.Fatal(err)
	}
	if !d.StarNodes()["b"] {
		t.Error("b should be a star node (+ counts)")
	}
}

func TestSortedStarNodes(t *testing.T) {
	d, _ := ParseString(`<!ELEMENT a (z*, b*, m*)>`)
	got := d.SortedStarNodes()
	want := []string{"b", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
