package dtd

import "testing"

// FuzzParseString checks the DTD parser never panics and that accepted
// inputs yield consistent star-node queries.
func FuzzParseString(f *testing.F) {
	seeds := []string{
		`<!ELEMENT a (b*)>`,
		`<!ELEMENT a ((b | c)+, d?)>`,
		`<!ELEMENT a (#PCDATA)>`,
		`<!ELEMENT a (#PCDATA | b)*>`,
		`<!ELEMENT a EMPTY><!ATTLIST a x CDATA #REQUIRED>`,
		`<!ENTITY % p "x"> %p; <!-- c --> <?pi?>`,
		`<!ELEMENT`, `<!ATTLIST a`, `<!BOGUS>`, ``, `garbage`,
		`<!ELEMENT a (b`, `<!ELEMENT a (b,|)>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		stars := d.StarNodes()
		// Every star node must come from some declared parent's model.
		for s := range stars {
			found := false
			for _, name := range d.ElementNames() {
				if d.StarChildren(name)[s] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("star node %q has no declaring parent\ninput: %q", s, src)
			}
		}
	})
}
