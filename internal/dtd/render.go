package dtd

import (
	"strings"
)

// writeQuoted renders an attribute default as a quoted literal, picking the
// quote character the value does not contain (the parser accepts either). A
// value containing both quote kinds cannot be written as a DTD literal at
// all; the embedded double quotes are dropped so the rendering always
// re-parses — persisted indexes must stay loadable.
func writeQuoted(b *strings.Builder, v string) {
	q := byte('"')
	if strings.ContainsRune(v, '"') {
		if strings.ContainsRune(v, '\'') {
			v = strings.ReplaceAll(v, `"`, "")
		} else {
			q = '\''
		}
	}
	b.WriteByte(q)
	b.WriteString(v)
	b.WriteByte(q)
}

// String renders the DTD back into declaration syntax that ParseString
// accepts, in declaration order. The rendering is canonical rather than a
// copy of the original source (whitespace and skipped declarations such as
// ENTITY are not preserved), but parsing it yields an equivalent DTD:
// persist relies on this to carry DTDs across save/load.
func (d *DTD) String() string {
	var b strings.Builder
	for _, name := range d.order {
		decl := d.Elements[name]
		if decl == nil {
			continue
		}
		b.WriteString("<!ELEMENT ")
		b.WriteString(name)
		b.WriteString(" ")
		switch decl.Content {
		case ContentEmpty:
			b.WriteString("EMPTY")
		case ContentAny:
			b.WriteString("ANY")
		case ContentPCDATA:
			b.WriteString("(#PCDATA)")
		case ContentMixed:
			b.WriteString("(#PCDATA")
			for _, m := range decl.Mixed {
				b.WriteString("|")
				b.WriteString(m)
			}
			b.WriteString(")*")
		case ContentChildren:
			if decl.Model != nil {
				b.WriteString(decl.Model.String())
			} else {
				b.WriteString("ANY")
			}
		}
		b.WriteString(">\n")
		for _, att := range d.Attrs[name] {
			b.WriteString("<!ATTLIST ")
			b.WriteString(name)
			b.WriteString(" ")
			b.WriteString(att.Name)
			b.WriteString(" ")
			if att.Type != "" {
				b.WriteString(att.Type)
			} else {
				b.WriteString("CDATA")
			}
			switch {
			case att.Required:
				b.WriteString(" #REQUIRED")
			case att.Implied:
				b.WriteString(" #IMPLIED")
			case att.Fixed:
				b.WriteString(" #FIXED ")
				writeQuoted(&b, att.Default)
			default:
				b.WriteString(" ")
				writeQuoted(&b, att.Default)
			}
			b.WriteString(">\n")
		}
	}
	return b.String()
}
