package dtd

import (
	"strings"
	"testing"
)

// TestRenderRoundTrip: String() output re-parses into an equivalent DTD —
// the property persist relies on to carry DTDs inside index files.
func TestRenderRoundTrip(t *testing.T) {
	src := `
<!ELEMENT store (name, (shirt | skirt)*, note?, branch+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT shirt EMPTY>
<!ELEMENT skirt ANY>
<!ELEMENT note (#PCDATA|em|strong)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>
<!ELEMENT branch (name)>
<!ATTLIST store id ID #REQUIRED>
<!ATTLIST store city CDATA #IMPLIED>
<!ATTLIST branch kind (main|outlet) "main">
<!ATTLIST branch tag CDATA #FIXED "x">
`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := d.String()
	d2, err := ParseString(rendered)
	if err != nil {
		t.Fatalf("rendered DTD does not re-parse: %v\n%s", err, rendered)
	}
	if got, want := strings.Join(d2.ElementNames(), ","), strings.Join(d.ElementNames(), ","); got != want {
		t.Errorf("element names = %q, want %q", got, want)
	}
	if got, want := strings.Join(d2.SortedStarNodes(), ","), strings.Join(d.SortedStarNodes(), ","); got != want {
		t.Errorf("star nodes = %q, want %q", got, want)
	}
	for _, name := range d.ElementNames() {
		if d2.PCDATAOnly(name) != d.PCDATAOnly(name) {
			t.Errorf("%s: PCDATAOnly mismatch", name)
		}
		if len(d2.Attrs[name]) != len(d.Attrs[name]) {
			t.Errorf("%s: %d attrs, want %d", name, len(d2.Attrs[name]), len(d.Attrs[name]))
		}
	}
	// Rendering is a fixed point after one round.
	if d2.String() != rendered {
		t.Error("render is not idempotent")
	}
}

// TestRenderQuotedDefaults: defaults containing quote characters must still
// render into parseable declarations (persist depends on String() output
// always re-parsing).
func TestRenderQuotedDefaults(t *testing.T) {
	src := `<!ELEMENT r EMPTY>
<!ATTLIST r a CDATA 'say "hi"'>
<!ATTLIST r b CDATA "it's">
<!ATTLIST r c CDATA "plain">
`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := d.String()
	d2, err := ParseString(rendered)
	if err != nil {
		t.Fatalf("rendered DTD does not re-parse: %v\n%s", err, rendered)
	}
	want := map[string]string{"a": `say "hi"`, "b": "it's", "c": "plain"}
	for _, att := range d2.Attrs["r"] {
		if att.Default != want[att.Name] {
			t.Errorf("attr %s default = %q, want %q", att.Name, att.Default, want[att.Name])
		}
	}
	// A default with both quote kinds cannot be a DTD literal; the render
	// drops the double quotes but must stay parseable.
	d.Attrs["r"] = append(d.Attrs["r"], AttDef{Element: "r", Name: "d", Type: "CDATA", Default: `a"b'c`})
	if _, err := ParseString(d.String()); err != nil {
		t.Fatalf("both-quotes default renders unparseable: %v\n%s", err, d.String())
	}
}
