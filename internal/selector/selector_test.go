package selector

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/xmltree"
)

type fixture struct {
	doc   *xmltree.Document
	il    *ilist.IList
	cls   *classify.Classification
	stats *features.Stats
}

func figure1(t *testing.T) *fixture {
	t.Helper()
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)
	il := ilist.Build(result.Root, index.Tokenize(gen.Figure1Query), cls, km, stats)
	return &fixture{doc: result, il: il, cls: cls, stats: stats}
}

// countElements returns element count and whether every non-root node has
// its parent in the tree (connectivity).
func countElements(root *xmltree.Node) (int, bool) {
	n, ok := 0, true
	root.Walk(func(m *xmltree.Node) bool {
		if m.IsElement() {
			n++
		}
		if m != root && m.Parent == nil {
			ok = false
		}
		return true
	})
	return n, ok
}

func TestGreedyFigure2(t *testing.T) {
	fx := figure1(t)
	// Bound 13 accommodates a Figure 2-shaped snippet (14 elements).
	s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, 13)

	if s.Edges > 13 {
		t.Fatalf("edges = %d > bound", s.Edges)
	}
	elems, connected := countElements(s.Root)
	if !connected {
		t.Fatal("snippet disconnected")
	}
	if elems-1 != s.Edges {
		t.Errorf("edge accounting: %d elements but Edges=%d", elems, s.Edges)
	}
	if s.Root.Label != "retailer" {
		t.Errorf("snippet root = %s", s.Root.Label)
	}

	// Figure 2 content: the snippet surfaces the retailer key, the Texas
	// store in Houston, and clothes with the dominant features.
	text := xmltree.RenderInline(s.Root)
	for _, want := range []string{"Brook Brothers", "Texas", "Houston", "clothes", "apparel"} {
		if !strings.Contains(text, want) {
			t.Errorf("snippet missing %q:\n%s", want, text)
		}
	}

	// At least 10 of the 12 IList items fit within 13 edges.
	if len(s.Covered) < 10 {
		t.Errorf("covered %d items: %v", len(s.Covered), s.Covered)
	}
	for _, idx := range s.Covered {
		if idx < 0 || idx >= fx.il.Len() {
			t.Errorf("bad covered index %d", idx)
		}
	}
}

func TestGreedyFullCoverage(t *testing.T) {
	fx := figure1(t)
	s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, 50)
	if len(s.Skipped) != 0 {
		var items []string
		for _, i := range s.Skipped {
			items = append(items, fx.il.Items[i].Text)
		}
		t.Errorf("skipped with generous bound: %v", items)
	}
}

func TestGreedyRespectsTinyBounds(t *testing.T) {
	fx := figure1(t)
	for bound := 0; bound <= 6; bound++ {
		s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, bound)
		if s.Edges > bound {
			t.Errorf("bound %d: edges = %d", bound, s.Edges)
		}
		// The root alone covers "retailer" (keyword) even at bound 0.
		if bound == 0 && len(s.Covered) == 0 {
			t.Error("bound 0 should still cover the root label keyword")
		}
	}
}

func TestGreedyCoverageMonotonicInBound(t *testing.T) {
	fx := figure1(t)
	prev := -1
	for bound := 0; bound <= 20; bound += 2 {
		s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, bound)
		if len(s.Covered) < prev {
			t.Errorf("coverage dropped at bound %d", bound)
		}
		prev = len(s.Covered)
	}
}

func TestGreedyClustersInstances(t *testing.T) {
	// The paper's locality argument (§2.4): instances are chosen close to
	// the existing tree. After covering Texas via some store, Houston
	// should reuse that store when possible, i.e. the snippet contains
	// exactly one store at moderate bounds.
	fx := figure1(t)
	s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, 10)
	stores := 0
	s.Root.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() && n.Label == "store" {
			stores++
		}
		return true
	})
	if stores != 1 {
		t.Errorf("snippet uses %d stores, want 1:\n%s", stores, xmltree.RenderASCII(s.Root))
	}
	// And that store must be a Houston store (covers city cheaply).
	if !strings.Contains(xmltree.RenderInline(s.Root), "Houston") {
		t.Errorf("snippet store is not the Houston one:\n%s", xmltree.RenderInline(s.Root))
	}
}

func TestCoveredItemsWitnessed(t *testing.T) {
	// Every covered item must actually be witnessed by the snippet tree.
	fx := figure1(t)
	for _, bound := range []int{3, 6, 9, 13, 30} {
		s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, bound)
		tr := newTracker(fx.cls, s.Root)
		s.Root.Walk(func(n *xmltree.Node) bool { tr.add(n); return true })
		for _, idx := range s.Covered {
			if !tr.covers(fx.il.Items[idx]) {
				t.Errorf("bound %d: item %d (%s) claimed covered but absent",
					bound, idx, fx.il.Items[idx].Text)
			}
		}
	}
}

func smallFixture(seed int64) *fixture {
	r := rand.New(rand.NewSource(seed))
	cities := []string{"Houston", "Austin", "Dallas"}
	cats := []string{"suit", "outwear", "jeans"}
	root := xmltree.Elem("retailer",
		xmltree.Attr("name", "Acme"),
		xmltree.Attr("product", "apparel"),
	)
	for i := 0; i < 2+r.Intn(2); i++ {
		m := xmltree.Elem("merchandises")
		for j := 0; j < 1+r.Intn(3); j++ {
			xmltree.Append(m, xmltree.Elem("clothes",
				xmltree.Attr("category", cats[r.Intn(len(cats))]),
			))
		}
		xmltree.Append(root, xmltree.Elem("store",
			xmltree.Attr("state", "Texas"),
			xmltree.Attr("city", cities[r.Intn(len(cities))]),
			m,
		))
	}
	// A corpus wrapper with a sibling retailer so labels classify as in
	// the real pipeline.
	corpus := xmltree.NewDocument(xmltree.Elem("retailers",
		root,
		xmltree.Elem("retailer", xmltree.Attr("name", "Other"), xmltree.Attr("product", "apparel")),
	))
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	result := xmltree.NewDocument(xmltree.DeepCopy(root))
	stats := features.Collect(result.Root, cls)
	il := ilist.Build(result.Root, []string{"texas", "apparel", "retailer"}, cls, km, stats)
	return &fixture{doc: result, il: il, cls: cls, stats: stats}
}

func TestExactAtLeastGreedy(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		fx := smallFixture(seed)
		for _, bound := range []int{2, 4, 6, 8} {
			g := Greedy(fx.doc, fx.il, fx.cls, fx.stats, bound)
			e := Exact(fx.doc, fx.il, fx.cls, fx.stats, bound, ExactConfig{})
			if e.Edges > bound {
				t.Errorf("seed %d bound %d: exact edges %d", seed, bound, e.Edges)
			}
			if len(e.Covered) < len(g.Covered) {
				t.Errorf("seed %d bound %d: exact %d < greedy %d",
					seed, bound, len(e.Covered), len(g.Covered))
			}
		}
	}
}

func TestExactFigure1SmallBound(t *testing.T) {
	fx := figure1(t)
	// Cap instances to keep branching tractable on the 7k-node result.
	e := Exact(fx.doc, fx.il, fx.cls, fx.stats, 6, ExactConfig{MaxInstancesPerItem: 3, MaxExpansions: 200000})
	g := Greedy(fx.doc, fx.il, fx.cls, fx.stats, 6)
	if len(e.Covered) < len(g.Covered) {
		t.Errorf("exact %d < greedy %d at bound 6", len(e.Covered), len(g.Covered))
	}
}

// Property: for random small results and random bounds the snippet obeys
// the bound, is connected, and edge accounting matches the materialized
// tree.
func TestGreedyProperties(t *testing.T) {
	check := func(seed int64) bool {
		fx := smallFixture(seed)
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		bound := r.Intn(12)
		s := Greedy(fx.doc, fx.il, fx.cls, fx.stats, bound)
		if s.Edges > bound {
			return false
		}
		elems, connected := countElements(s.Root)
		if !connected || elems-1 != s.Edges {
			return false
		}
		// Covered ∪ Skipped partitions the IList.
		if len(s.Covered)+len(s.Skipped) != fx.il.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyEmptyIList(t *testing.T) {
	fx := figure1(t)
	empty := &ilist.IList{}
	s := Greedy(fx.doc, empty, fx.cls, fx.stats, 5)
	if s.Edges != 0 || len(s.Covered) != 0 {
		t.Errorf("empty IList snippet = %+v", s)
	}
	if s.Root == nil || s.Root.Label != "retailer" {
		t.Errorf("snippet root = %v", s.Root)
	}
}
