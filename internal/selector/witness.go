package selector

import (
	"extract/internal/classify"
	"extract/internal/ilist"
	"extract/xmltree"
)

// Witnesses reports, for each IList item, whether the given tree (a snippet
// from any algorithm, or a whole result) makes it visible: the keyword
// appears in a label or displayed value, the entity label is present, the
// feature's attribute occurs with its value under the right entity. Metrics
// use this to score baseline snippets with the same rules as eXtract's own.
func Witnesses(root *xmltree.Node, il *ilist.IList, cls *classify.Classification) []bool {
	out := make([]bool, il.Len())
	if root == nil {
		return out
	}
	tr := newTracker(cls, root)
	root.Walk(func(n *xmltree.Node) bool { tr.add(n); return true })
	for i, it := range il.Items {
		out[i] = tr.covers(it)
	}
	return out
}

// CoverageOf returns the fraction of IList items the tree witnesses, and
// the rank-weighted fraction (weights 1/(1+rank), normalized). An empty
// IList scores 1 on both.
func CoverageOf(root *xmltree.Node, il *ilist.IList, cls *classify.Classification) (frac, weighted float64) {
	if il.Len() == 0 {
		return 1, 1
	}
	w := Witnesses(root, il, cls)
	var hit, total, whit, wtotal float64
	for i, ok := range w {
		weight := 1.0 / float64(1+i)
		total++
		wtotal += weight
		if ok {
			hit++
			whit += weight
		}
	}
	return hit / total, whit / wtotal
}
