package selector

import (
	"testing"
)

func TestGreedyRatioRespectsBound(t *testing.T) {
	fx := figure1(t)
	for _, bound := range []int{0, 3, 6, 13, 30} {
		s := GreedyRatio(fx.doc, fx.il, fx.cls, fx.stats, bound)
		if s.Edges > bound {
			t.Errorf("bound %d: edges %d", bound, s.Edges)
		}
		elems, connected := countElements(s.Root)
		if !connected || elems-1 != s.Edges {
			t.Errorf("bound %d: accounting broken (%d elems, %d edges)", bound, elems, s.Edges)
		}
		if len(s.Covered)+len(s.Skipped) != fx.il.Len() {
			t.Errorf("bound %d: partition broken", bound)
		}
	}
}

func TestGreedyRatioCoversAtGenerousBound(t *testing.T) {
	fx := figure1(t)
	s := GreedyRatio(fx.doc, fx.il, fx.cls, fx.stats, 50)
	if len(s.Skipped) != 0 {
		t.Errorf("skipped = %v", s.Skipped)
	}
}

// TestGreedyRatioNeverWorseOnCount: on small random fixtures, ratio greedy
// covers at least as many items as... not guaranteed in general — but both
// must stay within the exact optimum. This pins the three-way ordering
// greedy/ratio <= exact.
func TestStrategiesBoundedByExact(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		fx := smallFixture(seed)
		for _, bound := range []int{3, 5} {
			g := Greedy(fx.doc, fx.il, fx.cls, fx.stats, bound)
			r := GreedyRatio(fx.doc, fx.il, fx.cls, fx.stats, bound)
			e := Exact(fx.doc, fx.il, fx.cls, fx.stats, bound, ExactConfig{})
			if len(g.Covered) > len(e.Covered) {
				t.Errorf("seed %d bound %d: greedy %d > exact %d", seed, bound, len(g.Covered), len(e.Covered))
			}
			if len(r.Covered) > len(e.Covered) {
				t.Errorf("seed %d bound %d: ratio %d > exact %d", seed, bound, len(r.Covered), len(e.Covered))
			}
		}
	}
}

func TestGreedyRatioWitnessed(t *testing.T) {
	fx := figure1(t)
	s := GreedyRatio(fx.doc, fx.il, fx.cls, fx.stats, 9)
	w := Witnesses(s.Root, fx.il, fx.cls)
	for _, idx := range s.Covered {
		if !w[idx] {
			t.Errorf("item %d claimed covered but not witnessed", idx)
		}
	}
}
