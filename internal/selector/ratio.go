package selector

import (
	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/ilist"
	"extract/xmltree"
)

// GreedyRatio is an alternative instance selector for the E12 ablation: at
// every step it covers the affordable item maximizing importance/cost,
// where importance is the positional weight 1/(1+rank), instead of walking
// the IList strictly in rank order. Rank-order greedy (the paper's choice)
// can burn budget on an expensive high-rank item; ratio greedy trades that
// item for several cheap lower-ranked ones. The ablation measures whether
// that trade ever pays on this workload.
func GreedyRatio(doc *xmltree.Document, il *ilist.IList, cls *classify.Classification,
	stats *features.Stats, bound int) *Snippet {

	f := newFinder(doc, cls, stats, il)
	tr := newTracker(cls, doc.Root)
	edges := 0

	remaining := make(map[int]bool, il.Len())
	for i := range il.Items {
		remaining[i] = true
	}
	var covered []int
	markCovered := func() {
		for i := range il.Items {
			if remaining[i] && tr.covers(il.Items[i]) {
				delete(remaining, i)
				covered = append(covered, i)
			}
		}
	}
	markCovered()

	for len(remaining) > 0 {
		bestIdx, bestCost := -1, 0
		bestRatio := -1.0
		var bestPath []*xmltree.Node
		for idx := range remaining {
			it := il.Items[idx]
			for _, inst := range f.instancesOf(it) {
				c, path := tr.cost(inst, nil, -1)
				if edges+c > bound {
					continue
				}
				var ratio float64
				if c == 0 {
					ratio = 1e18 // free coverage always wins
				} else {
					ratio = (1.0 / float64(1+idx)) / float64(c)
				}
				// Deterministic tie-break: better ratio, then
				// lower rank, then cheaper.
				if ratio > bestRatio ||
					(ratio == bestRatio && bestIdx >= 0 && idx < bestIdx) {
					bestRatio, bestIdx, bestCost, bestPath = ratio, idx, c, path
				}
			}
		}
		if bestIdx < 0 {
			break // nothing affordable remains
		}
		tr.addAll(bestPath)
		edges += bestCost
		delete(remaining, bestIdx)
		covered = append(covered, bestIdx)
		markCovered()
	}

	var skipped []int
	for i := range il.Items {
		if remaining[i] {
			skipped = append(skipped, i)
		}
	}
	sortInts(covered)
	return materialize(doc, tr, covered, skipped, edges)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
