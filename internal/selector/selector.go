// Package selector implements eXtract's Instance Selector (paper §2.4):
// given a query result tree, its ranked IList and a snippet size bound,
// select node instances covering as many IList items as possible, in rank
// order, within the bound.
//
// Maximizing the number of covered items within a bounded-size connected
// subtree is NP-hard (the paper proves this; DESIGN.md §4 sketches the
// reduction), so the production path is a greedy algorithm: walk the IList
// in rank order and, for each item not yet covered by the snippet tree,
// attach the instance whose connection cost — new element edges on the path
// to the current tree — is smallest, skipping items that no longer fit. An
// exact branch-and-bound solver is provided for small inputs to measure the
// greedy's quality (experiment E7).
//
// Size accounting follows the paper's demo ("the number of edges in the
// tree", with bound 6 producing snippets like store → name, merchandises →
// clothes → category, fitting): edges connect element nodes; the text value
// of an attribute node displays inside it and is free.
package selector

import (
	"sort"

	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/xmltree"
)

// Snippet is a generated result snippet.
type Snippet struct {
	// Root is the snippet tree, an independent projection of the result
	// tree (Origin pointers lead back to it).
	Root *xmltree.Node

	// Covered and Skipped partition the IList item indexes: Covered items
	// are visible in the snippet, Skipped items did not fit (or had no
	// instance in the result).
	Covered []int
	Skipped []int

	// Edges is the snippet size: the number of element-to-element edges.
	Edges int

	// Nodes is the set of selected result-tree nodes (ancestor-closed,
	// including free text values).
	Nodes map[*xmltree.Node]bool
}

// CoveredItems returns the covered items in rank order.
func (s *Snippet) CoveredItems(il *ilist.IList) []ilist.Item {
	out := make([]ilist.Item, 0, len(s.Covered))
	for _, i := range s.Covered {
		out = append(out, il.Items[i])
	}
	return out
}

// instance is one way to witness an IList item: an element node a, plus
// optionally the text child b whose value must display. The two-pointer
// value form keeps instance lists free of per-entry allocations.
type instance struct {
	a, b *xmltree.Node
}

// deepest returns the instance's deepest node; its ancestor chain covers
// the whole instance.
func (in instance) deepest() *xmltree.Node {
	if in.b != nil {
		return in.b
	}
	return in.a
}

// tracker maintains the growing snippet tree and the evidence it exposes:
// node membership, element count, label tokens, value tokens, entity labels
// and (e, a, v) features present.
type tracker struct {
	cls      *classify.Classification
	inT      map[*xmltree.Node]bool
	tokens   map[string]bool
	labels   map[string]bool
	feats    map[features.Feature]bool
	elements int
}

func newTracker(cls *classify.Classification, root *xmltree.Node) *tracker {
	tr := &tracker{
		cls:    cls,
		inT:    make(map[*xmltree.Node]bool),
		tokens: make(map[string]bool),
		labels: make(map[string]bool),
		feats:  make(map[features.Feature]bool),
	}
	tr.add(root)
	return tr
}

// clone deep-copies the tracker; the exact solver branches on clones.
func (tr *tracker) clone() *tracker {
	c := &tracker{
		cls:      tr.cls,
		inT:      make(map[*xmltree.Node]bool, len(tr.inT)),
		tokens:   make(map[string]bool, len(tr.tokens)),
		labels:   make(map[string]bool, len(tr.labels)),
		feats:    make(map[features.Feature]bool, len(tr.feats)),
		elements: tr.elements,
	}
	for k := range tr.inT {
		c.inT[k] = true
	}
	for k := range tr.tokens {
		c.tokens[k] = true
	}
	for k := range tr.labels {
		c.labels[k] = true
	}
	for k := range tr.feats {
		c.feats[k] = true
	}
	return c
}

// add puts one node into the tree, updating evidence. Attribute-shaped
// elements bring their text value along for free (it displays inside them).
func (tr *tracker) add(n *xmltree.Node) {
	if tr.inT[n] {
		return
	}
	tr.inT[n] = true
	switch {
	case n.IsElement():
		tr.elements++
		tr.labels[n.Label] = true
		for _, t := range index.Tokenize(n.Label) {
			tr.tokens[t] = true
		}
		if n.HasSingleTextChild() {
			tr.add(n.Children[0])
		}
	case n.IsText():
		for _, t := range index.Tokenize(n.Value) {
			tr.tokens[t] = true
		}
		if p := n.Parent; p != nil && p.HasSingleTextChild() {
			if owner := tr.cls.EntityOwner(p); owner != nil {
				tr.feats[features.Feature{
					Type:  features.Type{Entity: owner.Label, Attr: p.Label},
					Value: n.Value,
				}] = true
			}
		}
	}
}

// covers reports whether the current tree already witnesses the item.
func (tr *tracker) covers(it ilist.Item) bool {
	switch it.Kind {
	case ilist.Keyword:
		return tr.tokens[it.Text]
	case ilist.EntityName:
		return tr.labels[it.Text]
	case ilist.ResultKey, ilist.DominantFeature:
		return tr.feats[it.Feature]
	default:
		return false
	}
}

// cost returns the number of new element edges needed to attach the
// instance to the tree, and the path nodes to add (appended to buf, which
// may be reused across calls). Free (text) nodes do not count. An
// instance's nodes form a single ancestor chain ending at its deepest
// node, so one climb from that node to the nearest tree node covers the
// whole instance; instances are within the result tree rooted at the
// tracked root, so a tree ancestor always exists.
//
// limit prunes the climb: once cost exceeds it the instance cannot win,
// and the (partial) path is meaningless. Pass a negative limit for no
// pruning.
func (tr *tracker) cost(inst instance, buf []*xmltree.Node, limit int) (int, []*xmltree.Node) {
	path := buf[:0]
	cost := 0
	for m := inst.deepest(); m != nil && !tr.inT[m]; m = m.Parent {
		path = append(path, m)
		if m.IsElement() {
			cost++
			if limit >= 0 && cost > limit {
				return cost, path
			}
		}
	}
	return cost, path
}

func (tr *tracker) addAll(path []*xmltree.Node) {
	// Add top-down so ancestors enter first (cosmetic; membership is a set).
	for i := len(path) - 1; i >= 0; i-- {
		tr.add(path[i])
	}
}

// finder enumerates item instances over one result tree. Instead of
// building a full inverted index of the result per snippet, it walks the
// tree once, collecting instances only for the keywords and entity labels
// the IList actually asks for; feature instances come straight from the
// feature statistics.
type finder struct {
	stats    *features.Stats
	keywords map[string][]instance // Keyword items, document order
	entities map[string][]instance // EntityName items, document order
}

func newFinder(doc *xmltree.Document, cls *classify.Classification, stats *features.Stats,
	il *ilist.IList) *finder {

	f := &finder{
		stats:    stats,
		keywords: make(map[string][]instance),
		entities: make(map[string][]instance),
	}
	for _, it := range il.Items {
		switch it.Kind {
		case ilist.Keyword:
			f.keywords[it.Text] = nil
		case ilist.EntityName:
			f.entities[it.Text] = nil
		}
	}
	if len(f.keywords) == 0 && len(f.entities) == 0 {
		return f
	}
	labelToks := make(map[string][]string) // per-label tokens, few labels
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if !n.IsElement() {
			return true
		}
		if insts, ok := f.entities[n.Label]; ok && cls.IsEntity(n) {
			f.entities[n.Label] = append(insts, instance{a: n})
		}
		if len(f.keywords) > 0 {
			toks, ok := labelToks[n.Label]
			if !ok {
				toks = index.Tokenize(n.Label)
				labelToks[n.Label] = toks
			}
			// Label instance first, then value instances in child order —
			// the document order a posting scan produced.
			for _, t := range toks {
				insts, want := f.keywords[t]
				if !want {
					continue
				}
				// A token repeated inside one label witnesses once.
				if k := len(insts); k > 0 && insts[k-1].b == nil && insts[k-1].a == n {
					continue
				}
				f.keywords[t] = append(insts, instance{a: n})
			}
			for _, c := range n.Children {
				if !c.IsText() {
					continue
				}
				index.EachToken(c.Value, func(t string) bool {
					insts, want := f.keywords[t]
					if !want {
						return true
					}
					// A token repeated inside one value witnesses once.
					if k := len(insts); k > 0 && insts[k-1].b == c {
						return true
					}
					f.keywords[t] = append(insts, instance{a: n, b: c})
					return true
				})
			}
		}
		return true
	})
	return f
}

// instancesOf lists the ways to witness an item, in document order.
func (f *finder) instancesOf(it ilist.Item) []instance {
	switch it.Kind {
	case ilist.Keyword:
		return f.keywords[it.Text]
	case ilist.EntityName:
		return f.entities[it.Text]
	case ilist.ResultKey, ilist.DominantFeature:
		var out []instance
		for _, n := range f.stats.Instances(it.Feature) {
			if n.HasSingleTextChild() {
				out = append(out, instance{a: n, b: n.Children[0]})
			}
		}
		return out
	}
	return nil
}

// Greedy builds a snippet for the result within the edge bound.
//
// doc is the result tree (finalized); il its IList; cls the corpus
// classification; stats the feature statistics collected on this result.
func Greedy(doc *xmltree.Document, il *ilist.IList, cls *classify.Classification,
	stats *features.Stats, bound int) *Snippet {

	f := newFinder(doc, cls, stats, il)
	tr := newTracker(cls, doc.Root)
	edges := 0

	var covered, skipped []int
	var cur, bestPath []*xmltree.Node // reused across candidate evaluations
	for idx, it := range il.Items {
		if tr.covers(it) {
			covered = append(covered, idx)
			continue
		}
		bestCost := -1
		bestPath = bestPath[:0]
		for _, inst := range f.instancesOf(it) {
			var c int
			// Prune climbs at bestCost-1: anything costlier cannot win
			// (ties keep the earliest instance, as before).
			c, cur = tr.cost(inst, cur, bestCost-1)
			if bestCost < 0 || c < bestCost {
				bestCost = c
				bestPath, cur = cur, bestPath
			}
			if c == 0 {
				break // cannot do better
			}
		}
		if bestCost >= 0 && edges+bestCost <= bound {
			tr.addAll(bestPath)
			edges += bestCost
			covered = append(covered, idx)
		} else {
			skipped = append(skipped, idx)
		}
	}
	return materialize(doc, tr, covered, skipped, edges)
}

func materialize(doc *xmltree.Document, tr *tracker, covered, skipped []int, edges int) *Snippet {
	root := xmltree.ProjectSet(doc.Root, tr.inT)
	return &Snippet{
		Root:    root,
		Covered: covered,
		Skipped: skipped,
		Edges:   edges,
		Nodes:   tr.inT,
	}
}

// ExactConfig bounds the exact solver's search; zero values choose the
// defaults shown.
type ExactConfig struct {
	// MaxInstancesPerItem caps the branching factor (default 8).
	MaxInstancesPerItem int
	// MaxExpansions caps total search-tree nodes (default 2,000,000);
	// the solver returns the best found when exhausted.
	MaxExpansions int
}

// Exact maximizes the number of covered IList items within the bound by
// branch and bound over the instance choices, in IList rank order. Ties
// between solutions covering equally many items break toward covering
// higher-ranked items. Exponential in the worst case: use on small results
// only (the E7 experiment measures greedy quality against it).
func Exact(doc *xmltree.Document, il *ilist.IList, cls *classify.Classification,
	stats *features.Stats, bound int, cfg ExactConfig) *Snippet {

	if cfg.MaxInstancesPerItem <= 0 {
		cfg.MaxInstancesPerItem = 8
	}
	if cfg.MaxExpansions <= 0 {
		cfg.MaxExpansions = 2_000_000
	}
	f := newFinder(doc, cls, stats, il)

	type best struct {
		count   int
		weight  float64
		tr      *tracker
		covered []int
		skipped []int
		edges   int
	}
	var b best
	b.count = -1

	weightOf := func(covered []int) float64 {
		w := 0.0
		for _, i := range covered {
			w += 1.0 / float64(1+i)
		}
		return w
	}

	expansions := 0
	var rec func(idx int, tr *tracker, edges int, covered, skipped []int)
	rec = func(idx int, tr *tracker, edges int, covered, skipped []int) {
		expansions++
		if expansions > cfg.MaxExpansions {
			return
		}
		// Upper bound: everything remaining gets covered.
		if len(covered)+(len(il.Items)-idx) < b.count {
			return
		}
		if idx == len(il.Items) {
			w := weightOf(covered)
			if len(covered) > b.count || (len(covered) == b.count && w > b.weight) {
				b = best{
					count:   len(covered),
					weight:  w,
					tr:      tr.clone(),
					covered: append([]int(nil), covered...),
					skipped: append([]int(nil), skipped...),
					edges:   edges,
				}
			}
			return
		}
		it := il.Items[idx]
		if tr.covers(it) {
			rec(idx+1, tr, edges, append(covered, idx), skipped)
			return
		}
		insts := f.instancesOf(it)
		if len(insts) > cfg.MaxInstancesPerItem {
			insts = insts[:cfg.MaxInstancesPerItem]
		}
		// Branch: each affordable instance.
		for _, inst := range insts {
			c, path := tr.cost(inst, nil, -1)
			if edges+c > bound {
				continue
			}
			child := tr.clone()
			child.addAll(path)
			rec(idx+1, child, edges+c, append(covered, idx), skipped)
		}
		// Branch: skip the item.
		rec(idx+1, tr, edges, covered, append(skipped, idx))
	}
	rec(0, newTracker(cls, doc.Root), 0, nil, nil)

	if b.count < 0 { // exhausted without completing any leaf (tiny budgets)
		return Greedy(doc, il, cls, stats, bound)
	}
	sort.Ints(b.covered)
	sort.Ints(b.skipped)
	return materialize(doc, b.tr, b.covered, b.skipped, b.edges)
}
