package extract

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/rank"
	"extract/internal/search"
	"extract/internal/workload"
	"extract/xmltree"
)

// renderFacadeHits flattens a facade response to comparable bytes.
func renderFacadeHits(hits []*Hit) string {
	var b strings.Builder
	for _, h := range hits {
		b.WriteString(h.Result.XML())
		b.WriteString("\n")
		b.WriteString(h.Snippet.XML())
		b.WriteString("\n")
	}
	return b.String()
}

// directQuery replicates the pre-unification unsharded Query path exactly:
// evaluate on the corpus's engine, rank if asked, then generate one snippet
// per result with a private generator — no serving layer, no cache.
func directQuery(c *Corpus, query string, bound int, ranked bool, opts search.Options) (string, error) {
	cc := c.Internal()
	rs, err := cc.Engine(opts).Search(query)
	if err != nil {
		return "", err
	}
	if ranked {
		rank.NewScorer(cc.Index).Sort(rs, queryTermKeys(query))
	}
	g := core.NewGenerator(cc)
	kws := index.Tokenize(query)
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(xmltree.XMLString(r.Root))
		b.WriteString("\n")
		b.WriteString(xmltree.XMLString(g.ForResultTokens(r, kws, bound).Snippet.Root))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// unifyQueries samples a query mix for one generated corpus, including
// no-match and partial-match queries.
func unifyQueries(mk func() *xmltree.Document) []string {
	qs := []string{"zzznope", "zzznope store"}
	for _, q := range workload.Generate(mk(), workload.Config{Queries: 8, Keywords: 2, Seed: 29}) {
		qs = append(qs, q.Text())
	}
	return qs
}

// TestUnshardedServedMatchesDirect is the unification property at the
// facade: an unsharded corpus's Query — now always through the serving
// layer's pool and cache — answers byte-identical to the pre-unification
// direct path (engine evaluation plus per-result snippet generation), on
// the first computation and on every cache hit, for every option mix
// including ranking.
func TestUnshardedServedMatchesDirect(t *testing.T) {
	corpora := map[string]func() *xmltree.Document{
		"figure1": gen.Figure1Corpus,
		"stores": func() *xmltree.Document {
			return gen.Stores(gen.StoresConfig{Retailers: 5, StoresPerRetailer: 3, ClothesPerStore: 4, Seed: 31})
		},
		"movies": func() *xmltree.Document {
			return gen.Movies(gen.MoviesConfig{Movies: 8, Seed: 13})
		},
	}
	optCases := []struct {
		name   string
		facade []SearchOption
		opts   search.Options
		ranked bool
	}{
		{"plain", nil, search.Options{DistinctAnchors: true}, false},
		{"elca", []SearchOption{WithELCA()}, search.Options{DistinctAnchors: true, Semantics: search.SemanticsELCA}, false},
		{"xseek", []SearchOption{WithTrimmedResults()}, search.Options{DistinctAnchors: true, Mode: search.ModeXSeek}, false},
		{"max3", []SearchOption{WithMaxResults(3)}, search.Options{DistinctAnchors: true, MaxResults: 3}, false},
		{"ranked", []SearchOption{WithRanking()}, search.Options{DistinctAnchors: true}, true},
	}
	for name, mk := range corpora {
		c := FromDocument(mk(), nil)
		defer c.Close()
		for _, oc := range optCases {
			for _, q := range unifyQueries(mk) {
				label := fmt.Sprintf("%s/%s/q=%q", name, oc.name, q)
				want, werr := directQuery(c, q, 10, oc.ranked, oc.opts)
				for pass := 0; pass < 3; pass++ {
					hits, gerr := c.Query(q, 10, oc.facade...)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s pass %d: errors differ: %v vs %v", label, pass, werr, gerr)
					}
					if werr != nil {
						continue
					}
					if got := renderFacadeHits(hits); got != want {
						t.Fatalf("%s pass %d: served response differs from direct path\nwant %s\ngot  %s",
							label, pass, want, got)
					}
				}
				// Search must return the same result list the direct engine does.
				wantRS, werr2 := c.Internal().Engine(oc.opts).Search(q)
				gotRS, gerr2 := c.Search(q, oc.facade...)
				if (werr2 == nil) != (gerr2 == nil) {
					t.Fatalf("%s: Search errors differ: %v vs %v", label, werr2, gerr2)
				}
				if werr2 == nil {
					if len(gotRS) != len(wantRS) {
						t.Fatalf("%s: Search returned %d results, want %d", label, len(gotRS), len(wantRS))
					}
					if !oc.ranked {
						for i := range wantRS {
							if xmltree.XMLString(gotRS[i].Root()) != xmltree.XMLString(wantRS[i].Root) {
								t.Fatalf("%s: Search result %d differs", label, i)
							}
						}
					}
				}
			}
		}
		st, ok := c.QueryCacheStats()
		if !ok || st.Hits == 0 {
			t.Fatalf("%s: unsharded corpus never hit the query cache: ok=%v %+v", name, ok, st)
		}
	}
}

// TestReloadSwapsCorpus pins the facade reload path: after Reload the
// corpus answers — results, snippets, stats, suggestions — exactly as a
// fresh load of the new data would, entries cached against the old data
// are gone, and the shard count may change with the data.
func TestReloadSwapsCorpus(t *testing.T) {
	xmlA := xmltree.XMLString(gen.Figure5Corpus().Root)
	xmlB := xmltree.XMLString(gen.Stores(gen.StoresConfig{Retailers: 6, StoresPerRetailer: 2, ClothesPerStore: 4, Seed: 77}).Root)

	c, err := LoadString(xmlA) // unsharded
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("austin store", 10); err != nil { // cache against A
		t.Fatal(err)
	}

	// Reload with different data and a different shape: 1 shard -> 3.
	src, err := LoadString(xmlB, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Reload(src)
	if got := c.Shards(); got != 3 {
		t.Fatalf("shards after reload = %d, want 3", got)
	}

	fresh, err := LoadString(xmlB, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got, want := c.Stats(), fresh.Stats(); got.Nodes != want.Nodes {
		t.Fatalf("stats after reload: %d nodes, want %d", got.Nodes, want.Nodes)
	}
	for _, q := range []string{"austin store", "store jeans", "retailer"} {
		wantHits, werr := fresh.Query(q, 10)
		for pass := 0; pass < 2; pass++ {
			hits, gerr := c.Query(q, 10)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("q=%q: errors differ: %v vs %v", q, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if got, want := renderFacadeHits(hits), renderFacadeHits(wantHits); got != want {
				t.Fatalf("q=%q pass %d after reload: response differs from fresh load\nwant %s\ngot  %s",
					q, pass, want, got)
			}
		}
	}

	// And back down to an unsharded corpus.
	src2, err := LoadString(xmlA)
	if err != nil {
		t.Fatal(err)
	}
	c.Reload(src2)
	if got := c.Shards(); got != 1 {
		t.Fatalf("shards after second reload = %d, want 1", got)
	}
	freshA, err := LoadString(xmlA)
	if err != nil {
		t.Fatal(err)
	}
	defer freshA.Close()
	wantHits, err := freshA.Query("austin store", 10)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := c.Query("austin store", 10)
	if err != nil {
		t.Fatal(err)
	}
	if renderFacadeHits(hits) != renderFacadeHits(wantHits) {
		t.Fatal("response after reload back to corpus A differs from fresh load")
	}
}

// TestConcurrentReloadsConverge: racing Reload calls are serialized, so
// whichever finishes last leaves the facade data and the serving backend
// pointing at the same generation — never a split-brain where queries
// serve one corpus and Stats/Suggest read another.
func TestConcurrentReloadsConverge(t *testing.T) {
	xmlA := xmltree.XMLString(gen.Figure5Corpus().Root)
	c, err := LoadString(xmlA)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("store", 6); err != nil { // start the serving layer
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		src, err := LoadString(xmlA, WithShards(1+i%3))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Reload(src)
		}()
	}
	wg.Wait()

	if got, want := c.srv.Backend(), c.data.Load().backend(); got != want {
		t.Fatalf("serving backend and facade data diverged after racing reloads: %T vs %T", got, want)
	}
	if _, err := c.Query("store", 6); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesDuringReload hammers a corpus with queries while it
// reloads repeatedly, alternating data and shape. Every response must be
// byte-identical to one of the two corpus generations — never an error,
// never a mix (run under -race in CI).
func TestConcurrentQueriesDuringReload(t *testing.T) {
	mkA := func() *xmltree.Document {
		return gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 2, ClothesPerStore: 3, Seed: 41})
	}
	mkB := func() *xmltree.Document {
		return gen.Stores(gen.StoresConfig{Retailers: 6, StoresPerRetailer: 3, ClothesPerStore: 2, Seed: 42})
	}
	xmlA, xmlB := xmltree.XMLString(mkA().Root), xmltree.XMLString(mkB().Root)
	queries := []string{"store texas", "retailer jeans", "store"}

	// Reference renders per generation (shape-independent: sharded and
	// unsharded answers are pinned byte-identical elsewhere).
	ref := make(map[string][2]string)
	freshA, err := LoadString(xmlA)
	if err != nil {
		t.Fatal(err)
	}
	freshB, err := LoadString(xmlB)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ha, err := freshA.Query(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := freshB.Query(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		ref[q] = [2]string{renderFacadeHits(ha), renderFacadeHits(hb)}
	}

	c, err := LoadString(xmlA)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				hits, err := c.Query(q, 8)
				if err != nil {
					t.Errorf("q=%q: %v", q, err)
					return
				}
				got := renderFacadeHits(hits)
				if r := ref[q]; got != r[0] && got != r[1] {
					t.Errorf("q=%q: response matches neither corpus generation\ngot %s", q, got)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 6; i++ {
		xml := xmlB
		if i%2 == 1 {
			xml = xmlA
		}
		var opts []Option
		if i%3 == 0 {
			opts = append(opts, WithShards(2)) // shape changes mid-flight too
		}
		src, err := LoadString(xml, opts...)
		if err != nil {
			t.Error(err)
			break
		}
		c.Reload(src)
	}
	close(stop)
	wg.Wait()
}
