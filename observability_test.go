package extract_test

import (
	"bytes"
	"net"
	"os"
	"regexp"
	"strings"
	"testing"

	"extract"
	"extract/internal/gen"
	"extract/internal/ingest"
	"extract/internal/remote"
	"extract/internal/telemetry"
	"extract/xmltree"
)

// metricNameRe matches exported metric names wherever OBSERVABILITY.md or
// a metrics exposition mentions them. Prometheus-synthesized suffixes are
// normalized away so `extract_query_seconds_count` in a PromQL example
// resolves to the histogram that emits it.
var metricNameRe = regexp.MustCompile(`extract_[a-z0-9_]+`)

func normalizeMetricName(n string) string {
	for _, suf := range []string{"_count", "_sum", "_bucket"} {
		n = strings.TrimSuffix(n, suf)
	}
	return n
}

// TestObservabilityDocMatchesRegistry diffs OBSERVABILITY.md against a
// live registry in both directions: every metric the doc names must exist
// in code, and every metric the code registers must be documented. The doc
// is the operator contract — this test is what keeps it honest.
func TestObservabilityDocMatchesRegistry(t *testing.T) {
	c := extract.FromDocument(gen.Figure5Corpus(), nil)
	// Touch every registration path: a computed query (serve metrics), a
	// swap reload and a snapshot save (reload metrics), plus the gauges
	// extractd registers for its watch loop — through the same
	// RegisterGauge API it uses, so the documented wiring is the tested
	// wiring.
	if _, err := c.Query("store texas", 6); err != nil {
		t.Fatal(err)
	}
	c.Reload(extract.FromDocument(gen.Figure5Corpus(), nil))
	if err := c.SaveSnapshot(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	c.RegisterGauge("extract_reload_consecutive_failures",
		"Consecutive failed reload attempts.", func() float64 { return 0 }, nil)
	c.RegisterGauge("extract_reload_breaker_open",
		"1 while the reload circuit breaker is open.", func() float64 { return 0 }, nil)

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	// A remote corpus registers the router's remote-call metrics on the
	// same registry; exercise one over a loopback shard tier so the doc is
	// held to those series too.
	if err := remoteCorpusMetrics(t, &buf); err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			registered[strings.Fields(name)[0]] = true
		}
	}
	if len(registered) < 10 {
		t.Fatalf("suspiciously small registry (%d metrics): %v", len(registered), registered)
	}

	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range metricNameRe.FindAllString(string(doc), -1) {
		documented[normalizeMetricName(m)] = true
	}

	for name := range documented {
		if !registered[name] {
			t.Errorf("OBSERVABILITY.md documents %s, but no such metric is registered", name)
		}
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %s is registered but OBSERVABILITY.md does not document it", name)
		}
	}
}

// remoteCorpusMetrics serves a tiny snapshot from one loopback shard
// server, queries it through extract.Connect, and appends both sides'
// expositions to buf: the router-side remote corpus's registry and the
// shard server's own registry (what -metrics-addr scrapes), so the doc
// diff covers the whole distributed surface.
func remoteCorpusMetrics(t *testing.T, buf *bytes.Buffer) error {
	t.Helper()
	lc, err := extract.LoadString(xmltree.XMLString(gen.Figure5Corpus().Root), extract.WithShards(2))
	if err != nil {
		return err
	}
	defer lc.Close()
	snapDir := t.TempDir()
	if err := lc.SaveSnapshot(snapDir); err != nil {
		return err
	}
	loaded, err := ingest.Load(snapDir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serverReg := telemetry.NewRegistry()
	srv := remote.NewServer(loaded.Corpus,
		remote.WithOwnedShards(remote.OwnedShards(loaded.Source, 0, 1)),
		remote.WithServerTelemetry(serverReg))
	go srv.Serve(ln)
	defer srv.Close()
	rc, err := extract.Connect(snapDir, [][]string{{ln.Addr().String()}})
	if err != nil {
		return err
	}
	defer rc.Close()
	if _, err := rc.Query("store texas", 6); err != nil {
		return err
	}
	if err := rc.WriteMetrics(buf); err != nil {
		return err
	}
	return telemetry.WritePrometheus(buf, telemetry.Instance{Snap: serverReg.Snapshot()})
}
