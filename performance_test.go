package extract_test

import (
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

// benchFieldRe matches an inline-cited JSON field name: lowercase with at
// least one underscore. Metric names share the shape but carry the
// extract_ prefix and are already diffed against the live registry by
// TestObservabilityDocMatchesRegistry, so they are excluded here.
var benchFieldRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// inlineCodeRe matches inline code spans on one line; fenced blocks are
// stripped before it runs.
var inlineCodeRe = regexp.MustCompile("`([^`\n]+)`")

// collectJSONKeys gathers every object key appearing anywhere in v.
func collectJSONKeys(v any, into map[string]bool) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			into[k] = true
			collectJSONKeys(sub, into)
		}
	case []any:
		for _, sub := range t {
			collectJSONKeys(sub, into)
		}
	}
}

// TestPerformanceDocCitesRealBenchFields keeps PERFORMANCE.md honest
// against BENCH_search.json in both directions: every bench field or
// section the doc cites in inline code must exist somewhere in the report,
// and every trajectory section the report records must be documented. A
// renamed JSON tag or a section added without prose fails here, exactly
// like OBSERVABILITY.md and the metrics registry.
func TestPerformanceDocCitesRealBenchFields(t *testing.T) {
	docBytes, err := os.ReadFile("PERFORMANCE.md")
	if err != nil {
		t.Fatal(err)
	}
	reportBytes, err := os.ReadFile("BENCH_search.json")
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(reportBytes, &report); err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	collectJSONKeys(report, keys)
	if len(keys) < 10 {
		t.Fatalf("implausibly few keys in BENCH_search.json: %d", len(keys))
	}

	// Strip fenced code blocks: shell commands are not field citations.
	var prose []string
	fenced := false
	for _, line := range strings.Split(string(docBytes), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if !fenced {
			prose = append(prose, line)
		}
	}

	cited := map[string]bool{}
	for _, m := range inlineCodeRe.FindAllStringSubmatch(strings.Join(prose, "\n"), -1) {
		tok := m[1]
		if !benchFieldRe.MatchString(tok) || strings.HasPrefix(tok, "extract_") {
			continue
		}
		cited[tok] = true
		if !keys[tok] {
			t.Errorf("PERFORMANCE.md cites %q, which is not a field of BENCH_search.json", tok)
		}
	}
	if len(cited) < 5 {
		t.Errorf("PERFORMANCE.md cites only %d bench fields; the extraction regex may have rotted", len(cited))
	}

	// Reverse direction: every recorded trajectory section must appear in
	// the doc's prose as an inline-cited name.
	doc := strings.Join(prose, "\n")
	for name, v := range report {
		if _, isSection := v.([]any); !isSection {
			continue
		}
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("BENCH_search.json records section %q but PERFORMANCE.md never documents it", name)
		}
	}
}
