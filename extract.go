package extract

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"extract/internal/core"
	"extract/internal/dtd"
	"extract/internal/faultinject"
	"extract/internal/index"
	"extract/internal/ingest"
	"extract/internal/persist"
	"extract/internal/rank"
	"extract/internal/remote"
	"extract/internal/search"
	"extract/internal/serve"
	"extract/internal/shard"
	"extract/internal/telemetry"
	"extract/xmltree"
	"extract/xpath"
)

// ErrOverloaded rejects a query that would exceed the corpus's in-flight
// bound (WithMaxInFlight / ConfigureLimits). It is returned before any
// evaluation work; servers should map it to HTTP 503 with a Retry-After.
var ErrOverloaded = serve.ErrOverloaded

// Corpus is an analyzed XML database: parsed tree, node classification
// (entity / attribute / connection), mined entity keys and keyword index.
// A corpus loaded with WithShards partitions the document into shards with
// independent packed indexes; queries fan out across them and merge (see
// internal/shard), while the API is identical. Every corpus — sharded or
// not — answers Search and Query through one serving layer (internal/serve):
// a fixed worker pool bounds evaluation concurrency, engines are reused
// across queries, and repeated queries are answered from a size-bounded LRU
// cache keyed on interned keyword ids — tune it with WithWorkers and
// WithQueryCache. Reload swaps in freshly analyzed data without dropping
// in-flight queries.
type Corpus struct {
	// data is the corpus's current analyzed state, replaced atomically by
	// Reload; every method works on one coherent snapshot of it.
	data atomic.Pointer[corpusData]

	// Serving-layer configuration, fixed before the first query.
	srvWorkers     int
	srvCache       int64 // cache budget in bytes; -1 = serve.DefaultCacheBytes
	srvTimeout     time.Duration
	srvMaxInFlight int
	slowThreshold  time.Duration
	slowFn         func(SlowQuery)

	// reg collects the corpus's metrics (query latency histograms, cache
	// and failure counters, reload timings); see WriteMetrics. It exists
	// from construction so reload metrics record even before the serving
	// layer starts.
	reg *telemetry.Registry

	srvOnce sync.Once
	srv     *serve.Server

	// reloadMu serializes Reload: publishing the data generation and
	// swapping the serving backend must be one step, or two racing
	// reloads could leave queries served from one generation and
	// Stats/Suggest/SaveIndex reading another.
	reloadMu sync.Mutex
}

// corpusData is one immutable generation of a corpus's analyzed state —
// exactly one of the two corpus fields is set. Reload publishes a new
// generation and swaps the serving layer onto it; queries in flight keep
// the snapshot they started with.
type corpusData struct {
	c  *core.Corpus  // unsharded corpus; nil when sharded
	sh *shard.Corpus // sharded corpus; nil when unsharded
	// rt serves the generation from a remote shard-server tier (Connect);
	// when set, both corpus fields are nil — the data lives in the shard
	// servers, and only the snapshot's analysis artifacts are local.
	rt *remote.Router

	// src is the generation's delta-ingestion identity (root fingerprint
	// + per-shard content hashes), computed lazily on the first delta
	// reload — or carried over from the snapshot manifest for a
	// snapshot-loaded generation, which then never rehashes at all.
	srcMu sync.Mutex
	src   *ingest.Source
}

// source returns the generation's content hashes, computing them on first
// use (one linear pass over the documents).
func (d *corpusData) source() ingest.Source {
	d.srcMu.Lock()
	defer d.srcMu.Unlock()
	if d.src == nil {
		var s ingest.Source
		if d.sh != nil {
			label, fromAttr := d.sh.Root()
			s.RootHash = ingest.RootHash(label, fromAttr, d.sh.InternalSubset())
			s.Shards = make([]uint64, 0, d.sh.NumShards())
			for _, sc := range d.sh.Shards() {
				s.Shards = append(s.Shards, ingest.ShardHash(sc.Doc))
			}
		} else {
			label, fromAttr, subset := "", false, ""
			if d.c.Doc != nil {
				subset = d.c.Doc.InternalSubset
				if d.c.Doc.Root != nil {
					label, fromAttr = d.c.Doc.Root.Label, d.c.Doc.Root.FromAttr
				}
			}
			s.RootHash = ingest.RootHash(label, fromAttr, subset)
			s.Shards = []uint64{ingest.ShardHash(d.c.Doc)}
		}
		d.src = &s
	}
	return *d.src
}

// backend adapts the generation to the serving layer's corpus interface.
func (d *corpusData) backend() serve.Backend {
	if d.rt != nil {
		return d.rt
	}
	if d.sh != nil {
		return d.sh
	}
	return serve.Single{C: d.c}
}

// server returns the corpus's lazily started serving layer.
func (c *Corpus) server() *serve.Server {
	c.srvOnce.Do(func() {
		var opts []serve.Option
		if c.srvWorkers > 0 {
			opts = append(opts, serve.WithWorkers(c.srvWorkers))
		}
		if c.srvCache >= 0 {
			opts = append(opts, serve.WithCacheBytes(c.srvCache))
		}
		if c.srvTimeout > 0 {
			opts = append(opts, serve.WithQueryTimeout(c.srvTimeout))
		}
		if c.srvMaxInFlight > 0 {
			opts = append(opts, serve.WithMaxInFlight(c.srvMaxInFlight))
		}
		opts = append(opts, serve.WithTelemetry(c.reg))
		if c.slowThreshold > 0 && c.slowFn != nil {
			fn := c.slowFn
			opts = append(opts, serve.WithSlowQueries(c.slowThreshold, func(r serve.QueryRecord) {
				fn(sanitizeSlowQuery(r))
			}))
		}
		c.srv = serve.New(c.data.Load().backend(), opts...)
	})
	return c.srv
}

// newCorpus wraps one corpus generation with default serving configuration.
func newCorpus(d *corpusData) *Corpus {
	c := &Corpus{srvCache: -1, reg: telemetry.NewRegistry()}
	c.data.Store(d)
	return c
}

// newSharded wraps a sharded corpus with default serving configuration.
func newSharded(sh *shard.Corpus) *Corpus {
	return newCorpus(&corpusData{sh: sh})
}

// newUnsharded wraps an unsharded corpus with default serving configuration.
func newUnsharded(cc *core.Corpus) *Corpus {
	return newCorpus(&corpusData{c: cc})
}

// ConfigureServing sets the serving-layer parameters — worker-pool size
// (0 = GOMAXPROCS) and query-cache budget in bytes (0 disables caching,
// negative restores the default budget) — for corpora built with the
// FromDocument* constructors, which take no load options. It must be
// called before the first query.
func (c *Corpus) ConfigureServing(workers int, cacheBytes int64) {
	c.srvWorkers = workers
	c.srvCache = cacheBytes
}

// ConfigureLimits sets the serving layer's failure-policy knobs — the
// per-query deadline (0 = none) and the bound on concurrently admitted
// queries (0 = unlimited; excess queries fail fast with ErrOverloaded) —
// for corpora built with the FromDocument* constructors, which take no
// load options. Like ConfigureServing, it must be called before the first
// query.
func (c *Corpus) ConfigureLimits(queryTimeout time.Duration, maxInFlight int) {
	c.srvTimeout = queryTimeout
	c.srvMaxInFlight = maxInFlight
}

// Close releases the serving layer's worker pool. Only long-lived servers
// need it; a dropped Corpus cleans up on garbage collection, and queries
// after Close still work (evaluation runs on the calling goroutine).
func (c *Corpus) Close() {
	// Going through server() makes Close safe against a concurrent
	// first query: the sync.Once orders the pool's creation before
	// its stop (worst case it builds a pool only to stop it).
	c.server().Close()
	if rt := c.data.Load().rt; rt != nil {
		rt.Close()
	}
}

// Reload replaces the corpus's analyzed data with src's — the online
// index-refresh path. The swap is atomic: queries already in flight finish
// against the data they started on, later queries see only the new data,
// and the query cache is invalidated in the same step (responses computed
// against the old data never enter it). Concurrent Reload calls are
// serialized; the one that starts last wins. src may have any shape —
// reloading can change the shard count, or swap a sharded corpus for an
// unsharded one — and is consumed: it must not be used afterwards. The
// receiving corpus keeps its own serving configuration (workers, cache
// budget).
func (c *Corpus) Reload(src *Corpus) {
	start := time.Now()
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	d := src.data.Load()
	c.data.Store(d)
	c.server().Swap(d.backend())
	c.recordReload("swap", "full", start, nil)
}

// DeltaStats reports what one delta reload did: how many shards the new
// generation has, how many were adopted unchanged from the previous one,
// and how many were rebuilt (or, for a snapshot reload, reloaded from
// their packed images).
type DeltaStats struct {
	Shards  int `json:"shards"`
	Reused  int `json:"reused"`
	Rebuilt int `json:"rebuilt"`
}

// Mode names the refresh that happened: "delta" when at least one shard
// was adopted, "full" otherwise.
func (s DeltaStats) Mode() string {
	if s.Reused > 0 {
		return "delta"
	}
	return "full"
}

// ReloadDelta is Reload with the new corpus built incrementally from XML
// source: the source is parsed and its top-level entities are hashed with
// the same partitioner a fresh load would use, and only shards whose
// content hash moved are re-analyzed — unchanged shards are adopted from
// the serving generation, document and packed index intact. The global
// analysis (classification, keys, summary, dataguide) is always recomputed
// over the new document, so the resulting corpus is byte-identical to a
// fresh Load of the same source with the same options (pinned by property
// tests); the swap itself behaves exactly like Reload, including the
// query-cache epoch bump. A parse or option error leaves the old
// generation serving. opts are the load options a fresh load would get;
// pass the same ones every reload, or the shard layout shifts and the
// delta degrades to a full rebuild (which is always correct, just not
// cheap).
func (c *Corpus) ReloadDelta(r io.Reader, opts ...Option) (stats DeltaStats, err error) {
	defer func(start time.Time) { c.recordReload("xml", stats.Mode(), start, err) }(time.Now())
	if faultinject.Enabled() {
		if err := faultinject.Fire(faultinject.ReloadSource); err != nil {
			return DeltaStats{}, err
		}
	}
	cfg := newLoadConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return DeltaStats{}, err
		}
	}
	var popts []xmltree.ParseOption
	if cfg.maxNodes > 0 {
		popts = append(popts, xmltree.WithMaxNodes(cfg.maxNodes))
	}
	doc, err := xmltree.Parse(r, popts...)
	if err != nil {
		return DeltaStats{}, err
	}
	if cfg.dtd == nil && doc.InternalSubset != "" {
		d, err := dtd.ParseString(doc.InternalSubset)
		if err != nil {
			return DeltaStats{}, fmt.Errorf("extract: internal DTD subset: %w", err)
		}
		cfg.dtd = d
	}

	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	old := c.data.Load()
	if old.rt != nil {
		return DeltaStats{}, ErrRemoteCorpus
	}
	diff := ingest.Diff(old.source(), doc, cfg.shards)

	var nd *corpusData
	switch {
	case cfg.shards > 1 && diff.Reused > 0 && old.sh != nil:
		// The delta path proper: analyze the whole new document (the
		// global artifacts a fresh build computes before partitioning),
		// then rebuild only the changed blocks against it.
		a := core.Analyze(doc, cfg.dtd)
		label, fromAttr := "", false
		if doc.Root != nil {
			label, fromAttr = doc.Root.Label, doc.Root.FromAttr
		}
		subset := doc.InternalSubset
		// Materialize (reparent + finalize) only the changed blocks —
		// adopted blocks' children stay where they are, so the per-reload
		// work past the parse is proportional to the change.
		cuts := shard.Cuts(doc, cfg.shards)
		oldShards := old.sh.Shards()
		shards := make([]*core.Corpus, len(diff.Hashes))
		for i := range shards {
			if !diff.Changed[i] {
				// Content-identical block: adopt the old shard's document
				// and packed index; Assemble rebinds it to the new
				// analysis.
				shards[i] = &core.Corpus{Doc: oldShards[i].Doc, Index: oldShards[i].Index}
				stats.Reused++
			} else {
				part := shard.PartitionAt(doc, cuts, i)
				shards[i] = core.BuildCorpus(part, core.WithSharedAnalysis(a))
				stats.Rebuilt++
			}
		}
		nd = &corpusData{sh: shard.Assemble(shards, a, label, fromAttr, subset)}
		stats.Shards = len(shards)
	case cfg.shards > 1:
		// Nothing to adopt (first delta, shape change, or everything
		// moved): the exact fresh-load path.
		var sopts []shard.Option
		if cfg.dtd != nil {
			sopts = append(sopts, shard.WithDTD(cfg.dtd))
		}
		sc := shard.Build(doc, cfg.shards, sopts...)
		nd = &corpusData{sh: sc}
		stats.Shards, stats.Rebuilt = sc.NumShards(), sc.NumShards()
	case diff.Reused == 1 && old.c != nil:
		// Unsharded and content-identical: keep the document and index,
		// refresh the analysis.
		a := core.Analyze(doc, cfg.dtd)
		nd = &corpusData{c: &core.Corpus{
			Doc: old.c.Doc, Index: old.c.Index,
			Cls: a.Cls, Keys: a.Keys, Summary: a.Summary, Guide: a.Guide, DTD: a.DTD,
		}}
		stats.Shards, stats.Reused = 1, 1
	default:
		var copts []core.Option
		if cfg.dtd != nil {
			copts = append(copts, core.WithDTD(cfg.dtd))
		}
		nd = &corpusData{c: core.BuildCorpus(doc, copts...)}
		stats.Shards, stats.Rebuilt = 1, 1
	}
	nd.src = &ingest.Source{RootHash: diff.RootHash, Shards: diff.Hashes}
	c.data.Store(nd)
	c.server().Swap(nd.backend())
	return stats, nil
}

// ReloadDeltaFile is ReloadDelta reading the XML source from a file.
func (c *Corpus) ReloadDeltaFile(path string, opts ...Option) (DeltaStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return DeltaStats{}, err
	}
	defer f.Close()
	return c.ReloadDelta(f, opts...)
}

// ReloadSnapshot is Reload with the new corpus read from a snapshot
// directory (see SaveSnapshot), incrementally: the snapshot manifest's
// per-shard content hashes are diffed against the serving generation's,
// unchanged shards are adopted in place, and only changed shard images are
// decoded from disk — the refresh path for deployments that ship index
// updates as snapshot directories instead of raw XML. When the shapes do
// not line up the whole snapshot loads, which is still just mmap + decode,
// never re-analysis. The swap behaves exactly like Reload; a read error
// leaves the old generation serving.
func (c *Corpus) ReloadSnapshot(dir string) (stats DeltaStats, err error) {
	defer func(start time.Time) { c.recordReload("snapshot", stats.Mode(), start, err) }(time.Now())
	if faultinject.Enabled() {
		if err := faultinject.Fire(faultinject.ReloadSource); err != nil {
			return DeltaStats{}, err
		}
	}
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	old := c.data.Load()
	if old.rt != nil {
		// Remote tier: re-read the manifest and re-place shards on the
		// same router; the shard servers swap generations on their own
		// (Server.Swap). The backend swap bumps the cache epoch, so no
		// response computed against the old placement is ever replayed.
		m, err := ingest.ReadManifest(dir)
		if err != nil {
			return DeltaStats{}, err
		}
		if err := old.rt.ReloadSnapshot(dir); err != nil {
			return DeltaStats{}, err
		}
		src := m.Source()
		nd := &corpusData{rt: old.rt, src: &src}
		c.data.Store(nd)
		c.server().Swap(nd.backend())
		return DeltaStats{Shards: len(src.Shards), Rebuilt: len(src.Shards)}, nil
	}
	oldSrc := old.source()

	// A writer may be refreshing the directory in place; the manifest is
	// written last, so re-reading it after the images and retrying on a
	// mismatch guarantees one coherent generation (same scheme as
	// ingest.Load).
	const attempts = 3
	for attempt := 0; attempt < attempts; attempt++ {
		m, err := ingest.ReadManifest(dir)
		if err != nil {
			return DeltaStats{}, err
		}
		snapSrc := m.Source()
		aligned := oldSrc.RootHash == snapSrc.RootHash && len(oldSrc.Shards) == len(snapSrc.Shards)

		var (
			nd    *corpusData
			stats DeltaStats
		)
		switch {
		case m.Sharded && aligned && old.sh != nil:
			a, label, fromAttr, subset, err := ingest.LoadAnalysis(dir, m)
			if err != nil {
				if !ingest.ManifestUnchanged(dir, m) {
					continue
				}
				return DeltaStats{}, err
			}
			oldShards := old.sh.Shards()
			shards := make([]*core.Corpus, len(m.Shards))
			errs := make([]error, len(m.Shards))
			var wg sync.WaitGroup
			for i, e := range m.Shards {
				if snapSrc.Shards[i] == oldSrc.Shards[i] {
					shards[i] = &core.Corpus{Doc: oldShards[i].Doc, Index: oldShards[i].Index}
					stats.Reused++
					continue
				}
				stats.Rebuilt++
				// Changed images decode in parallel, like a full snapshot
				// load — a delta with several changed shards must never be
				// slower than the full path it undercuts.
				wg.Add(1)
				go func(i int, e ingest.ShardEntry) {
					defer wg.Done()
					shards[i], errs[i] = ingest.LoadShardImage(dir, e)
				}(i, e)
			}
			wg.Wait()
			if err := firstError(errs); err != nil {
				if !ingest.ManifestUnchanged(dir, m) {
					continue
				}
				return DeltaStats{}, err
			}
			nd = &corpusData{sh: shard.Assemble(shards, a, label, fromAttr, subset)}
			stats.Shards = len(shards)
			if !ingest.ManifestUnchanged(dir, m) {
				continue
			}
		case !m.Sharded && aligned && old.c != nil && snapSrc.Shards[0] == oldSrc.Shards[0]:
			// Unchanged unsharded snapshot: adopt the whole generation
			// (its image embeds the same analysis) — no image is read, so
			// there is nothing to race with. The swap still bumps the
			// cache epoch, which is what a reload promises.
			nd = &corpusData{c: old.c}
			stats.Shards, stats.Reused = 1, 1
		default:
			loaded, err := ingest.Load(dir) // internally retry-stable
			if err != nil {
				return DeltaStats{}, err
			}
			nd = &corpusData{sh: loaded.Corpus, c: loaded.Single}
			snapSrc = loaded.Source
			stats.Shards = len(snapSrc.Shards)
			stats.Rebuilt = stats.Shards
		}
		nd.src = &snapSrc
		c.data.Store(nd)
		c.server().Swap(nd.backend())
		return stats, nil
	}
	return DeltaStats{}, ingest.ErrSnapshotChanging
}

// firstError returns the first non-nil error of a parallel fan-out.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SaveSnapshot writes the corpus as a snapshot directory: a manifest with
// per-shard content hashes plus packed images (see internal/ingest). A
// snapshot is both the cheapest thing to serve from — LoadSnapshot
// memory-maps it and re-analyzes nothing — and the unit of incremental
// refresh: re-snapshotting after a small change rewrites only the changed
// shard images, and ReloadSnapshot adopts the unchanged ones in place.
func (c *Corpus) SaveSnapshot(dir string) error {
	defer c.recordSnapshotSave(time.Now())
	d := c.data.Load()
	if d.rt != nil {
		return ErrRemoteCorpus
	}
	if d.sh != nil {
		return ingest.Snapshot(dir, d.sh)
	}
	return ingest.SnapshotSingle(dir, d.c)
}

// LoadSnapshot opens a snapshot directory written by SaveSnapshot. The
// corpus shape (sharded or not, and how) comes from the snapshot itself,
// so of the load options only the serving-layer ones — WithWorkers and
// WithQueryCache — apply; shard, DTD and parse options are ignored.
func LoadSnapshot(dir string, opts ...Option) (*Corpus, error) {
	cfg := newLoadConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	loaded, err := ingest.Load(dir)
	if err != nil {
		return nil, err
	}
	d := &corpusData{sh: loaded.Corpus, c: loaded.Single}
	d.src = &loaded.Source
	c := newCorpus(d)
	c.ConfigureServing(cfg.workers, cfg.cache)
	c.ConfigureLimits(cfg.timeout, cfg.maxInFlight)
	return c, nil
}

// CacheStats is a point-in-time snapshot of the query cache: hit/miss
// counters, queries coalesced onto an in-flight identical computation, and
// current occupancy against the configured budget.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	// Rejected counts responses the admission filter declined to cache: a
	// query seen only once may fill spare capacity but never evicts the
	// warm working set.
	Rejected int64 `json:"rejected"`
	Entries  int64 `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Capacity int64 `json:"capacity"`
	// Panics counts queries failed by a recovered evaluation panic; Shed
	// counts queries rejected by the in-flight bound (ErrOverloaded).
	Panics int64 `json:"panics"`
	Shed   int64 `json:"shed"`
}

// QueryCacheStats reports the query-cache counters of the corpus's serving
// layer. Every corpus has one, so ok is always true; it is retained so
// callers written against the sharded-only serving layer keep compiling.
func (c *Corpus) QueryCacheStats() (stats CacheStats, ok bool) {
	st := c.server().Stats()
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Coalesced: st.Coalesced,
		Evictions: st.Evictions,
		Rejected:  st.Rejected,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
		Capacity:  st.Capacity,
		Panics:    st.Panics,
		Shed:      st.Shed,
	}, true
}

// analysis returns the corpus carrying the classification and keys that
// snippet generation needs: the corpus itself, or the shared analysis view
// of a sharded corpus.
func (c *Corpus) analysis() *core.Corpus {
	d := c.data.Load()
	if d.rt != nil {
		return d.rt.Analysis()
	}
	if d.sh != nil {
		return d.sh.Analysis()
	}
	return d.c
}

// Option configures corpus loading.
type Option func(*loadConfig) error

type loadConfig struct {
	dtd         *dtd.DTD
	maxNodes    int
	shards      int
	workers     int
	cache       int64 // -1 = default
	timeout     time.Duration
	maxInFlight int
}

// WithDTD supplies DTD text governing entity classification; without it the
// structure is inferred from the data.
func WithDTD(dtdText string) Option {
	return func(c *loadConfig) error {
		d, err := dtd.ParseString(dtdText)
		if err != nil {
			return err
		}
		c.dtd = d
		return nil
	}
}

// WithDTDFile reads the DTD from a file.
func WithDTDFile(path string) Option {
	return func(c *loadConfig) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		d, err := dtd.ParseString(string(data))
		if err != nil {
			return err
		}
		c.dtd = d
		return nil
	}
}

// WithMaxNodes bounds the parsed document size.
func WithMaxNodes(n int) Option {
	return func(c *loadConfig) error {
		c.maxNodes = n
		return nil
	}
}

// WithShards partitions the corpus into up to n shards (by top-level
// entities, contiguously and size-balanced), each with its own packed
// inverted index. Queries evaluate per shard in parallel and merge through
// a bounded top-k merge; results and snippets are identical to the unsharded
// corpus. n < 2 loads unsharded.
func WithShards(n int) Option {
	return func(c *loadConfig) error {
		if n < 0 {
			return fmt.Errorf("extract: negative shard count %d", n)
		}
		c.shards = n
		return nil
	}
}

// WithWorkers sets the serving layer's worker-pool size (default
// GOMAXPROCS): the fixed number of goroutines that all fanned-out work —
// per-shard evaluation on a sharded corpus, snippet generation on any
// corpus — runs on, no matter how many queries are in flight. An unsharded
// corpus has no evaluation fan-out to bound: its single-engine evaluation
// runs on the goroutine that asked.
func WithWorkers(n int) Option {
	return func(c *loadConfig) error {
		if n < 0 {
			return fmt.Errorf("extract: negative worker count %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithQueryCache sets the query-cache budget in bytes. Repeated queries
// (same keywords, options and snippet bound) are answered from a sharded
// LRU cache keyed on interned keyword ids instead of being recomputed; 0
// disables caching. The default is a modest budget (see
// internal/serve.DefaultCacheBytes). Sharded and unsharded corpora cache
// alike — both serve queries through the same layer.
func WithQueryCache(bytes int64) Option {
	return func(c *loadConfig) error {
		if bytes < 0 {
			return fmt.Errorf("extract: negative query-cache budget %d", bytes)
		}
		c.cache = bytes
		return nil
	}
}

// WithQueryTimeout sets a per-query deadline (default none): a query still
// evaluating when it expires stops at the next checkpoint and returns
// context.DeadlineExceeded. Queries carrying an earlier deadline on their
// own context (SearchContext, QueryContext) keep it.
func WithQueryTimeout(d time.Duration) Option {
	return func(c *loadConfig) error {
		if d < 0 {
			return fmt.Errorf("extract: negative query timeout %v", d)
		}
		c.timeout = d
		return nil
	}
}

// WithMaxInFlight bounds the number of queries evaluated concurrently
// (default unlimited). Queries beyond the bound fail immediately with
// ErrOverloaded instead of queueing — overload degrades to fast clean
// errors a client can retry.
func WithMaxInFlight(n int) Option {
	return func(c *loadConfig) error {
		if n < 0 {
			return fmt.Errorf("extract: negative in-flight bound %d", n)
		}
		c.maxInFlight = n
		return nil
	}
}

func newLoadConfig() loadConfig { return loadConfig{cache: -1} }

// Load parses and analyzes an XML database from r.
func Load(r io.Reader, opts ...Option) (*Corpus, error) {
	cfg := newLoadConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	var popts []xmltree.ParseOption
	if cfg.maxNodes > 0 {
		popts = append(popts, xmltree.WithMaxNodes(cfg.maxNodes))
	}
	doc, err := xmltree.Parse(r, popts...)
	if err != nil {
		return nil, err
	}
	// A DOCTYPE internal subset classifies the document unless the
	// caller supplied an explicit DTD.
	if cfg.dtd == nil && doc.InternalSubset != "" {
		d, err := dtd.ParseString(doc.InternalSubset)
		if err != nil {
			return nil, fmt.Errorf("extract: internal DTD subset: %w", err)
		}
		cfg.dtd = d
	}
	var c *Corpus
	if cfg.shards > 1 {
		c = FromDocumentSharded(doc, cfg.dtd, cfg.shards)
	} else {
		c = FromDocument(doc, cfg.dtd)
	}
	c.ConfigureServing(cfg.workers, cfg.cache)
	c.ConfigureLimits(cfg.timeout, cfg.maxInFlight)
	return c, nil
}

// LoadString parses and analyzes an XML database from a string.
func LoadString(s string, opts ...Option) (*Corpus, error) {
	return Load(strings.NewReader(s), opts...)
}

// ErrRemoteCorpus rejects an operation that needs local corpus data —
// whole-document access, index persistence, or in-process reload — on a
// corpus connected to a remote serving tier, which holds only the
// snapshot's analysis artifacts locally.
var ErrRemoteCorpus = errors.New("extract: operation requires local corpus data (corpus is served by a remote shard tier)")

// Connect opens a corpus served by a remote shard-server tier instead of
// local data: dir is the sharded snapshot directory the tier was started
// from (only its manifest and small analysis image are read — the shard
// images stay with the servers), and groups lists the replica addresses of
// each shard-server group (groups[g] are peers serving the same placement
// subset; see cmd/extractd's -shard-server mode). Queries, snippets and
// ranking behave exactly as on a local corpus — the router pins answers
// byte-identical — and the serving layer (cache, deadlines, worker pool)
// applies unchanged, so only WithWorkers, WithQueryCache, WithQueryTimeout
// and WithMaxInFlight load options are meaningful. Operations that need
// the documents themselves (XPath, SaveSnapshot, SaveIndex, delta reload)
// return ErrRemoteCorpus; ReloadSnapshot re-reads the manifest and re-places
// shards, pairing with the servers' own reload. Close also disconnects.
func Connect(dir string, groups [][]string, opts ...Option) (*Corpus, error) {
	cfg := newLoadConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	reg := telemetry.NewRegistry()
	rt, err := remote.OpenSnapshot(dir, groups, remote.WithRouterTelemetry(reg))
	if err != nil {
		return nil, err
	}
	m, err := ingest.ReadManifest(dir)
	if err != nil {
		rt.Close()
		return nil, err
	}
	src := m.Source()
	c := &Corpus{srvCache: -1, reg: reg}
	c.data.Store(&corpusData{rt: rt, src: &src})
	c.ConfigureServing(cfg.workers, cfg.cache)
	c.ConfigureLimits(cfg.timeout, cfg.maxInFlight)
	return c, nil
}

// LoadFile parses and analyzes an XML database from a file.
func LoadFile(path string, opts ...Option) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts...)
}

// LoadFiles parses several XML files into one corpus: the documents become
// children of a synthetic <collection> root, so entities, keys and queries
// span all of them (the demo site's multi-dataset setting in one corpus).
func LoadFiles(paths []string, opts ...Option) (*Corpus, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("extract: no files")
	}
	cfg := newLoadConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	var popts []xmltree.ParseOption
	if cfg.maxNodes > 0 {
		popts = append(popts, xmltree.WithMaxNodes(cfg.maxNodes))
	}
	root := xmltree.Elem("collection")
	for _, path := range paths {
		doc, err := xmltree.ParseFile(path, popts...)
		if err != nil {
			return nil, fmt.Errorf("extract: %s: %w", path, err)
		}
		xmltree.Append(root, doc.Root)
	}
	var c *Corpus
	if cfg.shards > 1 {
		c = FromDocumentSharded(xmltree.NewDocument(root), cfg.dtd, cfg.shards)
	} else {
		c = FromDocument(xmltree.NewDocument(root), cfg.dtd)
	}
	c.ConfigureServing(cfg.workers, cfg.cache)
	c.ConfigureLimits(cfg.timeout, cfg.maxInFlight)
	return c, nil
}

// Suggest returns up to k indexed keywords starting with prefix, most
// frequent first — query autocompletion. On a sharded corpus the per-shard
// completions merge, re-ranked by corpus-wide frequency.
func (c *Corpus) Suggest(prefix string, k int) []string {
	d := c.data.Load()
	if d.rt != nil {
		// Completion needs the local vocabulary, which lives with the
		// shard servers; a remote corpus has no suggestions.
		return nil
	}
	if d.sh != nil {
		return d.sh.CompletePrefix(prefix, k)
	}
	return d.c.Index.CompletePrefix(prefix, k)
}

// FromDocument analyzes an already-parsed document. d may be nil.
func FromDocument(doc *xmltree.Document, d *dtd.DTD) *Corpus {
	var copts []core.Option
	if d != nil {
		copts = append(copts, core.WithDTD(d))
	}
	return newUnsharded(core.BuildCorpus(doc, copts...))
}

// FromDocumentSharded analyzes an already-parsed document and partitions it
// into up to n shards. d may be nil; like FromDocument, any DOCTYPE
// internal subset is ignored here (Load resolves it before choosing a
// constructor), so sharded and unsharded corpora built from the same
// document always classify identically. The document's nodes are moved
// into the shards; doc is invalid afterwards.
func FromDocumentSharded(doc *xmltree.Document, d *dtd.DTD, n int) *Corpus {
	var sopts []shard.Option
	if d != nil {
		sopts = append(sopts, shard.WithDTD(d))
	}
	return newSharded(shard.Build(doc, n, sopts...))
}

// Internal exposes the underlying analyzed corpus for the experiment
// harness and tools; library users should not need it. For a sharded
// corpus it returns the reconstructed whole-document fallback corpus.
func (c *Corpus) Internal() *core.Corpus {
	d := c.data.Load()
	if d.rt != nil {
		// No local documents; the analysis view is all there is.
		return d.rt.Analysis()
	}
	if d.sh != nil {
		return d.sh.Fallback()
	}
	return d.c
}

// InternalShards exposes the sharded corpus, or nil when unsharded.
func (c *Corpus) InternalShards() *shard.Corpus { return c.data.Load().sh }

// Shards returns the number of index shards (1 for an unsharded corpus).
func (c *Corpus) Shards() int {
	d := c.data.Load()
	if d.rt != nil {
		return d.rt.NumShards()
	}
	if d.sh != nil {
		return d.sh.NumShards()
	}
	return 1
}

// Stats summarizes the corpus.
type Stats struct {
	Nodes            int
	Elements         int
	MaxDepth         int
	DistinctKeywords int
	Entities         []string
	Attributes       []string
	Connections      []string
}

// Stats returns corpus summary statistics. On a sharded corpus they
// aggregate across shards (shard-root copies deduplicated).
func (c *Corpus) Stats() Stats {
	d := c.data.Load()
	if d.rt != nil {
		// Only what the analysis artifacts and the (remote) corpus-wide
		// counters can answer; node-level statistics stay with the data.
		cls := d.rt.Analysis().Cls
		return Stats{
			Elements:    d.rt.TotalElements(),
			Entities:    cls.Entities(),
			Attributes:  cls.Attributes(),
			Connections: cls.Connections(),
		}
	}
	if d.sh != nil {
		maxDepth := 0
		for _, s := range d.sh.Shards() {
			if ds := s.Doc.ComputeStats(); ds.MaxDepth > maxDepth {
				maxDepth = ds.MaxDepth
			}
		}
		cls := d.sh.Classification()
		return Stats{
			Nodes:            d.sh.TotalNodes(),
			Elements:         d.sh.TotalElements(),
			MaxDepth:         maxDepth,
			DistinctKeywords: d.sh.DistinctKeywords(),
			Entities:         cls.Entities(),
			Attributes:       cls.Attributes(),
			Connections:      cls.Connections(),
		}
	}
	ds := d.c.Doc.ComputeStats()
	return Stats{
		Nodes:            ds.Nodes,
		Elements:         ds.Elements,
		MaxDepth:         ds.MaxDepth,
		DistinctKeywords: d.c.Index.DistinctKeywords(),
		Entities:         d.c.Cls.Entities(),
		Attributes:       d.c.Cls.Attributes(),
		Connections:      d.c.Cls.Connections(),
	}
}

// EntityKey returns the mined key attribute of an entity label.
func (c *Corpus) EntityKey(entity string) (attr string, ok bool) {
	d := c.data.Load()
	if d.rt != nil {
		return d.rt.Analysis().Keys.KeyAttr(entity)
	}
	if d.sh != nil {
		return d.sh.Keys().KeyAttr(entity)
	}
	return d.c.Keys.KeyAttr(entity)
}

// SearchOption configures query evaluation.
type SearchOption func(*searchConfig)

type searchConfig struct {
	opts   search.Options
	ranked bool
}

// WithELCA evaluates queries under ELCA semantics instead of SLCA.
func WithELCA() SearchOption {
	return func(c *searchConfig) { c.opts.Semantics = search.SemanticsELCA }
}

// WithMaxResults bounds the number of results. Under SLCA semantics the
// bound also terminates evaluation early: the scan stops as soon as the
// first n answers in document order are provable, without visiting the
// rest of the posting lists. The returned results are byte-identical to
// taking the first n of an unbounded query (pinned by property tests) —
// the bound changes cost, never answers. ELCA evaluation applies the bound
// only after computing the full answer set, since no document-order prefix
// of the ELCA set is provable mid-scan (see PERFORMANCE.md).
func WithMaxResults(n int) SearchOption {
	return func(c *searchConfig) { c.opts.MaxResults = n }
}

// WithTrimmedResults builds XSeek-style trimmed result trees instead of
// full anchor subtrees.
func WithTrimmedResults() SearchOption {
	return func(c *searchConfig) { c.opts.Mode = search.ModeXSeek }
}

// WithRanking orders results by relevance (IDF-weighted, depth-decayed
// keyword scores) instead of document order. Snippets complement ranking,
// per the paper; this supplies the ranking side.
func WithRanking() SearchOption {
	return func(c *searchConfig) { c.ranked = true }
}

// Result is one query result: a tree rooted at the result's anchor entity.
type Result struct {
	r     *search.Result
	score float64
}

// Score returns the relevance score assigned by WithRanking (0 otherwise).
func (r *Result) Score() float64 { return r.score }

// Size returns the number of edges of the result tree.
func (r *Result) Size() int { return r.r.Size() }

// Root returns the result tree root.
func (r *Result) Root() *xmltree.Node { return r.r.Root }

// XML serializes the result tree.
func (r *Result) XML() string { return xmltree.XMLString(r.r.Root) }

// Render draws the result tree as ASCII art.
func (r *Result) Render() string { return xmltree.RenderASCII(r.r.Root) }

// Internal exposes the underlying search result for tools.
func (r *Result) Internal() *search.Result { return r.r }

// Search evaluates a conjunctive keyword query and returns the results.
// Double-quoted spans in the query are phrase terms. Results come in
// document order, or by relevance with WithRanking.
func (c *Corpus) Search(query string, opts ...SearchOption) ([]*Result, error) {
	return c.SearchContext(context.Background(), query, opts...)
}

// SearchContext is Search honoring ctx: a cancelled or expired query stops
// at the next evaluation checkpoint and returns the context's error. The
// corpus's own query timeout (WithQueryTimeout), when configured, still
// applies on top of any deadline ctx carries.
func (c *Corpus) SearchContext(ctx context.Context, query string, opts ...SearchOption) ([]*Result, error) {
	cfg := searchConfig{opts: search.Options{DistinctAnchors: true}}
	for _, f := range opts {
		f(&cfg)
	}
	// The serving layer answers repeated queries from its cache; the
	// returned slice is fresh (safe for the in-place ranking sort below),
	// the results it holds are shared and read-only.
	rs, backend, err := c.server().SearchWithBackendContext(ctx, query, cfg.opts)
	if err != nil {
		return nil, err
	}
	var scores []float64
	if cfg.ranked {
		scores = scorerFor(backend).Sort(rs, queryTermKeys(query))
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = &Result{r: r}
		if scores != nil {
			out[i].score = scores[i]
		}
	}
	return out, nil
}

// scorerFor builds the relevance scorer over the global document
// frequencies of the corpus generation behind one serving backend — the
// generation that produced the results being ranked, which during a reload
// is not necessarily the corpus's current one.
func scorerFor(b serve.Backend) *rank.Scorer {
	switch x := b.(type) {
	case *shard.Corpus:
		return rank.NewScorerFunc(x.Count, x.TotalElements())
	case serve.Single:
		return rank.NewScorer(x.C.Index)
	case *remote.Router:
		// Corpus-wide statistics come from the serving tier, cached per
		// snapshot generation.
		return rank.NewScorerFunc(x.Count, x.TotalElements())
	}
	// Unreachable: the facade only ever builds the three shapes above.
	panic("extract: unknown serving backend")
}

// queryTermKeys returns the canonical term strings ranking scores against.
func queryTermKeys(query string) []string {
	terms := search.ParseQuery(query)
	keys := make([]string, len(terms))
	for i, t := range terms {
		keys[i] = t.String()
	}
	return keys
}

// SnippetOption configures snippet generation.
type SnippetOption func(*core.Generator)

// WithExactSelection replaces the greedy instance selector with exact
// branch-and-bound maximization (small results only).
func WithExactSelection() SnippetOption {
	return func(g *core.Generator) { g.Algorithm = core.AlgExact }
}

// Snippet is a generated result snippet with its derivation artifacts.
type Snippet struct {
	g *core.Generated
}

// Edges returns the snippet size in edges.
func (s *Snippet) Edges() int { return s.g.Snippet.Edges }

// Root returns the snippet tree.
func (s *Snippet) Root() *xmltree.Node { return s.g.Snippet.Root }

// Render draws the snippet as ASCII art.
func (s *Snippet) Render() string { return xmltree.RenderASCII(s.g.Snippet.Root) }

// Inline renders the snippet on one line.
func (s *Snippet) Inline() string { return xmltree.RenderInline(s.g.Snippet.Root) }

// XML serializes the snippet tree.
func (s *Snippet) XML() string { return xmltree.XMLString(s.g.Snippet.Root) }

// HTML renders the snippet as an escaped HTML tree with the query keywords
// highlighted; the web demo embeds this directly.
func (s *Snippet) HTML() string {
	return xmltree.RenderHTML(s.g.Snippet.Root, s.g.Keywords)
}

// IList returns the result's Snippet Information List in rank order.
func (s *Snippet) IList() []string { return s.g.IList.Texts() }

// Covered returns the IList items visible in the snippet, in rank order.
func (s *Snippet) Covered() []string {
	var out []string
	for _, i := range s.g.Snippet.Covered {
		out = append(out, s.g.IList.Items[i].Text)
	}
	return out
}

// Skipped returns the IList items that did not fit the bound.
func (s *Snippet) Skipped() []string {
	var out []string
	for _, i := range s.g.Snippet.Skipped {
		out = append(out, s.g.IList.Items[i].Text)
	}
	return out
}

// Coverage returns the fraction of IList items covered (1 for an empty
// IList).
func (s *Snippet) Coverage() float64 {
	if s.g.IList.Len() == 0 {
		return 1
	}
	return float64(len(s.g.Snippet.Covered)) / float64(s.g.IList.Len())
}

// ResultKey returns the key value identifying the result ("" if none).
func (s *Snippet) ResultKey() string { return s.g.IList.KeyValue }

// ReturnEntities returns the labels identified as the result's search
// target.
func (s *Snippet) ReturnEntities() []string { return s.g.IList.ReturnEntities }

// Internal exposes the underlying generation artifacts for tools.
func (s *Snippet) Internal() *core.Generated { return s.g }

// Snippet generates a snippet for one search result.
func (c *Corpus) Snippet(r *Result, query string, bound int, opts ...SnippetOption) *Snippet {
	g := core.NewGenerator(c.analysis())
	for _, o := range opts {
		o(g)
	}
	return &Snippet{g: g.ForResult(r.r, query, bound)}
}

// SnippetForTree generates a snippet for a result tree produced by an
// external search engine. The tree must be over the same vocabulary as the
// corpus (labels drive classification).
func (c *Corpus) SnippetForTree(result *xmltree.Document, query string, bound int, opts ...SnippetOption) *Snippet {
	g := core.NewGenerator(c.analysis())
	for _, o := range opts {
		o(g)
	}
	return &Snippet{g: g.ForTree(result, query, bound)}
}

// Hit pairs a search result with its snippet.
type Hit struct {
	Result  *Result
	Snippet *Snippet
}

// Query runs the end-to-end pipeline: search, then snippet each result
// within the bound. The serving layer computes — or replays from its cache
// — the result list and the snippets in one entry, with evaluation and
// snippet generation both scheduled on its worker pool. Cached entries hold
// hits in document order; ranking reorders a private copy, so a ranked and
// an unranked query share one cache entry.
func (c *Corpus) Query(query string, bound int, opts ...SearchOption) ([]*Hit, error) {
	return c.QueryContext(context.Background(), query, bound, opts...)
}

// QueryContext is Query honoring ctx (see SearchContext): evaluation and
// snippet generation both stop at their next checkpoint once ctx ends.
func (c *Corpus) QueryContext(ctx context.Context, query string, bound int, opts ...SearchOption) ([]*Hit, error) {
	if bound < 0 {
		return nil, fmt.Errorf("extract: negative snippet bound %d", bound)
	}
	cfg := searchConfig{opts: search.Options{DistinctAnchors: true}}
	for _, f := range opts {
		f(&cfg)
	}
	rs, gens, backend, err := c.server().QueryWithBackendContext(ctx, query, cfg.opts, bound)
	if err != nil {
		return nil, err
	}
	hits := make([]*Hit, len(rs))
	for i, r := range rs {
		hits[i] = &Hit{
			Result:  &Result{r: r},
			Snippet: &Snippet{g: gens[i]},
		}
	}
	if cfg.ranked {
		scorer := scorerFor(backend)
		keys := queryTermKeys(query)
		for _, h := range hits {
			h.Result.score = scorer.Score(h.Result.r, keys)
		}
		sort.SliceStable(hits, func(i, j int) bool {
			return hits[i].Result.score > hits[j].Result.score
		})
	}
	return hits, nil
}

// XPath evaluates an XPath-subset expression (see package extract/xpath)
// against the corpus and returns the selected elements as results, ready
// for snippet generation. Text nodes in the selection are skipped.
func (c *Corpus) XPath(expr string) ([]*Result, error) {
	e, err := xpath.Compile(expr)
	if err != nil {
		return nil, err
	}
	d := c.data.Load()
	if d.rt != nil {
		return nil, ErrRemoteCorpus
	}
	xdoc := d.c
	if d.sh != nil {
		// XPath needs the whole document; evaluate on the reconstructed
		// fallback corpus.
		xdoc = d.sh.Fallback()
	}
	var out []*Result
	for _, n := range e.SelectDoc(xdoc.Doc) {
		if !n.IsElement() {
			continue
		}
		out = append(out, &Result{r: search.FromNode(n)})
	}
	return out, nil
}

// SaveIndex writes the analyzed corpus in eXtract's binary index format
// (packed slabs; one image per shard for a sharded corpus); LoadIndex
// reopens it without re-parsing, re-tokenizing or re-analyzing the XML.
func (c *Corpus) SaveIndex(w io.Writer) error {
	d := c.data.Load()
	if d.rt != nil {
		return ErrRemoteCorpus
	}
	if d.sh != nil {
		return shard.Save(w, d.sh)
	}
	return persist.Save(w, d.c)
}

// SaveIndexFile writes the analyzed corpus to a file.
func (c *Corpus) SaveIndexFile(path string) error {
	d := c.data.Load()
	if d.rt != nil {
		return ErrRemoteCorpus
	}
	if d.sh != nil {
		return shard.SaveFile(path, d.sh)
	}
	return persist.SaveFile(path, d.c)
}

// LoadIndex reads a corpus saved with SaveIndex, dispatching on the magic
// between the sharded and single-corpus formats.
func LoadIndex(r io.Reader) (*Corpus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if shard.IsShardedImage(data) {
		sc, err := shard.LoadBytes(data)
		if err != nil {
			return nil, err
		}
		return newSharded(sc), nil
	}
	cc, err := persist.LoadBytes(data)
	if err != nil {
		return nil, err
	}
	return newUnsharded(cc), nil
}

// LoadIndexFile reads a corpus saved with SaveIndexFile.
func LoadIndexFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [4]byte
	n, _ := io.ReadFull(f, head[:])
	f.Close()
	if shard.IsShardedImage(head[:n]) {
		sc, err := shard.LoadFile(path)
		if err != nil {
			return nil, err
		}
		return newSharded(sc), nil
	}
	cc, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return newUnsharded(cc), nil
}

// Tokenize exposes the query/index tokenizer (lowercased word tokens).
func Tokenize(s string) []string { return index.Tokenize(s) }

// HitGroup is a group of hits sharing an identical snippet.
type HitGroup struct {
	// Hit is the group's representative (first in result order).
	Hit *Hit
	// Count is the number of hits in the group.
	Count int
	// Hits are all members, in result order.
	Hits []*Hit
}

// Diversify groups hits whose snippets render identically, so a result page
// can show "N similar results" instead of repeating one snippet — the flip
// side of the paper's distinguishability goal when results genuinely are
// indistinguishable at the chosen bound.
func Diversify(hits []*Hit) []*HitGroup {
	var groups []*HitGroup
	byKey := map[string]*HitGroup{}
	for _, h := range hits {
		key := h.Snippet.Inline()
		g := byKey[key]
		if g == nil {
			g = &HitGroup{Hit: h}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.Count++
		g.Hits = append(g.Hits, h)
	}
	return groups
}
