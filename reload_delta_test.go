package extract

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/workload"
	"extract/xmltree"
)

// deltaBaseDoc is the A side of every delta pair: four top-level
// retailers, so a 3-shard load has multi-entity shards and a one-entity
// edit stays confined to one shard.
func deltaBaseDoc() *xmltree.Document {
	return gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 4, Seed: 51})
}

// deltaVariants builds the B sides: every edit class a refresh can see.
func deltaVariants() map[string]func() *xmltree.Document {
	mutated := func() *xmltree.Document {
		doc := deltaBaseDoc()
		entity := doc.Root.Children[2]
		done := false
		entity.Walk(func(n *xmltree.Node) bool {
			if done || !n.IsText() {
				return true
			}
			n.Value = "zzzfresh inventory"
			done = true
			return false
		})
		return doc
	}
	added := func() *xmltree.Document {
		doc := deltaBaseDoc()
		extra := gen.Stores(gen.StoresConfig{Retailers: 1, StoresPerRetailer: 2, ClothesPerStore: 3, Seed: 99})
		xmltree.Append(doc.Root, xmltree.DeepCopy(extra.Root.Children[0]))
		return xmltree.NewDocument(doc.Root)
	}
	removed := func() *xmltree.Document {
		doc := deltaBaseDoc()
		doc.Root.Children = doc.Root.Children[:3]
		return xmltree.NewDocument(doc.Root)
	}
	renamedRoot := func() *xmltree.Document {
		doc := deltaBaseDoc()
		doc.Root.Label = "renamed"
		return xmltree.NewDocument(doc.Root)
	}
	return map[string]func() *xmltree.Document{
		"identical":    deltaBaseDoc,
		"one-entity":   mutated,
		"entity-added": added,
		"entity-gone":  removed,
		"root-renamed": renamedRoot,
	}
}

func deltaQueries(mk func() *xmltree.Document) []string {
	qs := []string{"zzznope", "zzzfresh", "retailer store", "jeans"}
	for _, q := range workload.Generate(mk(), workload.Config{Queries: 6, Keywords: 2, Seed: 61}) {
		qs = append(qs, q.Text())
	}
	return qs
}

// compareCorpora asserts that two corpora answer every query mix, the
// stats and the suggestions byte-identically.
func compareCorpora(t *testing.T, label string, got, want *Corpus) {
	t.Helper()
	optCases := []struct {
		name string
		opts []SearchOption
	}{
		{"plain", nil},
		{"elca", []SearchOption{WithELCA()}},
		{"xseek", []SearchOption{WithTrimmedResults()}},
		{"max3", []SearchOption{WithMaxResults(3)}},
		{"ranked", []SearchOption{WithRanking()}},
	}
	gs, ws := got.Stats(), want.Stats()
	if gs.Nodes != ws.Nodes || gs.Elements != ws.Elements || gs.DistinctKeywords != ws.DistinctKeywords ||
		fmt.Sprint(gs.Entities) != fmt.Sprint(ws.Entities) {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, gs, ws)
	}
	if g, w := got.Suggest("s", 10), want.Suggest("s", 10); fmt.Sprint(g) != fmt.Sprint(w) {
		t.Fatalf("%s: suggestions differ: %v vs %v", label, g, w)
	}
	for _, q := range append(deltaQueries(deltaBaseDoc), "store texas") {
		for _, oc := range optCases {
			wantHits, werr := want.Query(q, 10, oc.opts...)
			gotHits, gerr := got.Query(q, 10, oc.opts...)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s/%s/q=%q: errors differ: %v vs %v", label, oc.name, q, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if g, w := renderFacadeHits(gotHits), renderFacadeHits(wantHits); g != w {
				t.Fatalf("%s/%s/q=%q: delta-reloaded response differs from fresh load\nwant %s\ngot  %s",
					label, oc.name, q, w, g)
			}
		}
	}
}

// TestReloadDeltaMatchesFreshLoad is the delta-reload equivalence
// property: for every edit class (including no edit and a root rename),
// shard count and query-option mix, a corpus refreshed through
// ReloadDelta answers byte-identically to a fresh full load of the same
// source with the same options — whether shards were adopted or not.
func TestReloadDeltaMatchesFreshLoad(t *testing.T) {
	xmlA := xmltree.XMLString(deltaBaseDoc().Root)
	for variant, mk := range deltaVariants() {
		xmlB := xmltree.XMLString(mk().Root)
		for _, shards := range []int{1, 3} {
			label := fmt.Sprintf("%s/shards=%d", variant, shards)
			opts := []Option{WithShards(shards)}
			c, err := LoadString(xmlA, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Query("store", 8); err != nil { // cache against A
				t.Fatal(err)
			}
			stats, err := c.ReloadDelta(strings.NewReader(xmlB), opts...)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if variant == "identical" && shards > 1 && stats.Reused != stats.Shards {
				t.Fatalf("%s: identical reload adopted %d of %d shards", label, stats.Reused, stats.Shards)
			}
			if variant == "one-entity" && shards == 3 && (stats.Reused == 0 || stats.Rebuilt != 1) {
				t.Fatalf("%s: one-entity edit should rebuild exactly one shard, got %+v", label, stats)
			}
			if variant == "root-renamed" && stats.Reused != 0 {
				t.Fatalf("%s: root rename must rebuild everything, got %+v", label, stats)
			}
			fresh, err := LoadString(xmlB, opts...)
			if err != nil {
				t.Fatal(err)
			}
			compareCorpora(t, label, c, fresh)

			// A second delta on top of the first (back to A) keeps working:
			// the new generation's hashes were recorded by the reload.
			if _, err := c.ReloadDelta(strings.NewReader(xmlA), opts...); err != nil {
				t.Fatalf("%s: second delta: %v", label, err)
			}
			freshA, err := LoadString(xmlA, opts...)
			if err != nil {
				t.Fatal(err)
			}
			compareCorpora(t, label+"/back", c, freshA)
			c.Close()
			fresh.Close()
			freshA.Close()
		}
	}
}

// TestReloadDeltaChangedOptions: reloading with a different shard count is
// a full rebuild, and still byte-identical to a fresh load at the new
// count.
func TestReloadDeltaChangedOptions(t *testing.T) {
	xmlA := xmltree.XMLString(deltaBaseDoc().Root)
	c, err := LoadString(xmlA, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.ReloadDelta(strings.NewReader(xmlA), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 || c.Shards() != 2 {
		t.Fatalf("shape change: %+v, %d shards", stats, c.Shards())
	}
	fresh, err := LoadString(xmlA, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	compareCorpora(t, "reshard", c, fresh)
}

// TestReloadDeltaSkipsUnchangedShards is the counter-based proof that the
// delta path does what it claims: a one-entity edit on a 4-shard corpus
// runs exactly one index build (the changed shard) — the unchanged shards
// are adopted, not re-tokenized.
func TestReloadDeltaSkipsUnchangedShards(t *testing.T) {
	xmlA := xmltree.XMLString(deltaBaseDoc().Root)
	mut := deltaVariants()["one-entity"]
	xmlB := xmltree.XMLString(mut().Root)

	c, err := LoadString(xmlA, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 4 {
		t.Fatalf("loaded %d shards, want 4", c.Shards())
	}

	before := index.Builds()
	stats, err := c.ReloadDelta(strings.NewReader(xmlB), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	builds := index.Builds() - before
	if stats.Rebuilt != 1 || stats.Reused != 3 {
		t.Fatalf("delta stats = %+v, want 1 rebuilt / 3 reused", stats)
	}
	if builds != 1 {
		t.Fatalf("one-shard delta ran %d index builds, want exactly 1", builds)
	}

	// The full path, for contrast, builds every shard.
	before = index.Builds()
	if _, err := LoadString(xmlB, WithShards(4)); err != nil {
		t.Fatal(err)
	}
	if full := index.Builds() - before; full != 4 {
		t.Fatalf("full load ran %d index builds, want 4", full)
	}
}

// TestReloadSnapshotDelta pins the snapshot refresh path: reloading from a
// snapshot directory adopts unchanged shards, decodes only changed images,
// and leaves the corpus byte-identical to loading the snapshot from
// scratch.
func TestReloadSnapshotDelta(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a.xtsnap")
	dirB := filepath.Join(t.TempDir(), "b.xtsnap")
	xmlA := xmltree.XMLString(deltaBaseDoc().Root)
	mut := deltaVariants()["one-entity"]
	xmlB := xmltree.XMLString(mut().Root)

	for _, shards := range []int{1, 3} {
		label := fmt.Sprintf("shards=%d", shards)
		srcA, err := LoadString(xmlA, WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		srcB, err := LoadString(xmlB, WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if err := srcA.SaveSnapshot(dirA); err != nil {
			t.Fatal(err)
		}
		if err := srcB.SaveSnapshot(dirB); err != nil {
			t.Fatal(err)
		}

		c, err := LoadSnapshot(dirA)
		if err != nil {
			t.Fatal(err)
		}
		if c.Shards() != srcA.Shards() {
			t.Fatalf("%s: snapshot loaded %d shards, want %d", label, c.Shards(), srcA.Shards())
		}
		if _, err := c.Query("store", 8); err != nil {
			t.Fatal(err)
		}
		stats, err := c.ReloadSnapshot(dirB)
		if err != nil {
			t.Fatal(err)
		}
		if shards == 3 && (stats.Reused != 2 || stats.Rebuilt != 1) {
			t.Fatalf("%s: snapshot delta stats = %+v, want 2 reused / 1 rebuilt", label, stats)
		}
		fresh, err := LoadSnapshot(dirB)
		if err != nil {
			t.Fatal(err)
		}
		compareCorpora(t, "snapshot/"+label, c, fresh)

		// Reloading the same snapshot again is a pure-adoption no-op
		// (but still a generation swap).
		stats, err = c.ReloadSnapshot(dirB)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reused != stats.Shards || stats.Rebuilt != 0 {
			t.Fatalf("%s: identical snapshot reload = %+v, want all reused", label, stats)
		}
		c.Close()
		fresh.Close()
		srcA.Close()
		srcB.Close()
	}
}

// TestSnapshotFacadeRoundTrip: SaveSnapshot -> LoadSnapshot preserves
// shape and answers for both corpus shapes.
func TestSnapshotFacadeRoundTrip(t *testing.T) {
	xmlA := xmltree.XMLString(deltaBaseDoc().Root)
	for _, shards := range []int{1, 3} {
		dir := filepath.Join(t.TempDir(), "c.xtsnap")
		src, err := LoadString(xmlA, WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if err := src.SaveSnapshot(dir); err != nil {
			t.Fatal(err)
		}
		c, err := LoadSnapshot(dir)
		if err != nil {
			t.Fatal(err)
		}
		if c.Shards() != src.Shards() {
			t.Fatalf("shape changed through snapshot: %d vs %d", c.Shards(), src.Shards())
		}
		compareCorpora(t, fmt.Sprintf("roundtrip/shards=%d", shards), c, src)
		c.Close()
		src.Close()
	}
}

// TestConcurrentQueriesDuringDeltaReload hammers a corpus with queries
// while delta reloads alternate the data underneath it. Every response
// must match one of the two generations — never an error, never a mix
// (runs under -race in CI).
func TestConcurrentQueriesDuringDeltaReload(t *testing.T) {
	xmlA := xmltree.XMLString(deltaBaseDoc().Root)
	mut := deltaVariants()["one-entity"]
	xmlB := xmltree.XMLString(mut().Root)
	queries := []string{"store texas", "retailer jeans", "store"}

	ref := make(map[string][2]string)
	freshA, err := LoadString(xmlA, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer freshA.Close()
	freshB, err := LoadString(xmlB, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer freshB.Close()
	for _, q := range queries {
		ha, err := freshA.Query(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := freshB.Query(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		ref[q] = [2]string{renderFacadeHits(ha), renderFacadeHits(hb)}
	}

	c, err := LoadString(xmlA, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				hits, err := c.Query(q, 8)
				if err != nil {
					t.Errorf("q=%q: %v", q, err)
					return
				}
				got := renderFacadeHits(hits)
				if r := ref[q]; got != r[0] && got != r[1] {
					t.Errorf("q=%q: response matches neither generation\ngot %s", q, got)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 6; i++ {
		xml := xmlB
		if i%2 == 1 {
			xml = xmlA
		}
		if _, err := c.ReloadDelta(strings.NewReader(xml), WithShards(3)); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
