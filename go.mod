module extract

go 1.24
