package xmltree

import (
	"strings"
)

// RenderASCII draws n's subtree as an ASCII art tree, one node per line,
// matching the figures in the paper: element labels plain, text values
// quoted, attribute-shaped nodes folded as name: "value".
func RenderASCII(n *Node) string {
	var b strings.Builder
	renderASCII(&b, n, "", true, true)
	return b.String()
}

func renderASCII(b *strings.Builder, n *Node, prefix string, isLast, isRoot bool) {
	if !isRoot {
		b.WriteString(prefix)
		if isLast {
			b.WriteString("└─ ")
		} else {
			b.WriteString("├─ ")
		}
	}
	b.WriteString(nodeLabel(n))
	b.WriteString("\n")

	kids := renderKids(n)
	childPrefix := prefix
	if !isRoot {
		if isLast {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range kids {
		renderASCII(b, c, childPrefix, i == len(kids)-1, false)
	}
}

// RenderInline renders n's subtree on one line in functional notation:
// retailer(name:"Brook Brothers", store(city:"Houston", ...)). Snippet
// comparisons in tests and the distinguishability metric use this canonical
// form.
func RenderInline(n *Node) string {
	var b strings.Builder
	renderInline(&b, n)
	return b.String()
}

func renderInline(b *strings.Builder, n *Node) {
	b.WriteString(nodeLabel(n))
	kids := renderKids(n)
	if len(kids) == 0 {
		return
	}
	b.WriteString("(")
	for i, c := range kids {
		if i > 0 {
			b.WriteString(", ")
		}
		renderInline(b, c)
	}
	b.WriteString(")")
}

// nodeLabel folds attribute-shaped nodes to name:"value" and quotes text.
func nodeLabel(n *Node) string {
	if n.IsText() {
		return `"` + n.Value + `"`
	}
	if n.HasSingleTextChild() {
		return n.Label + `:"` + n.Children[0].Value + `"`
	}
	return n.Label
}

// renderKids hides the text child of attribute-shaped nodes (it is folded
// into the parent's label).
func renderKids(n *Node) []*Node {
	if n.HasSingleTextChild() {
		return nil
	}
	return n.Children
}
