package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseOption configures Parse.
type ParseOption func(*parseConfig)

type parseConfig struct {
	keepAttrs  bool
	trimSpace  bool
	maxNodes   int
	keepMixed  bool
	nsStripped bool
}

// WithAttributes controls whether XML attributes are normalized into
// attribute-shaped element children (default true).
func WithAttributes(keep bool) ParseOption {
	return func(c *parseConfig) { c.keepAttrs = keep }
}

// WithTrimSpace controls whether pure-whitespace text is dropped and other
// text is space-trimmed (default true).
func WithTrimSpace(trim bool) ParseOption {
	return func(c *parseConfig) { c.trimSpace = trim }
}

// WithMaxNodes bounds the number of nodes Parse will materialize; parsing a
// larger document fails with ErrTooLarge. Zero (the default) means no bound.
func WithMaxNodes(n int) ParseOption {
	return func(c *parseConfig) { c.maxNodes = n }
}

// WithNamespaceStripping controls whether namespace prefixes are stripped
// from element and attribute names (default true): the paper's model is
// prefix-free tags.
func WithNamespaceStripping(strip bool) ParseOption {
	return func(c *parseConfig) { c.nsStripped = strip }
}

// ErrTooLarge reports that a document exceeded the WithMaxNodes bound.
var ErrTooLarge = errors.New("xmltree: document exceeds node limit")

// ErrEmpty reports that the input contained no root element.
var ErrEmpty = errors.New("xmltree: no root element")

// Parse reads an XML document from r and returns its finalized Document.
// XML attributes become attribute-shaped element children (unless disabled),
// namespace prefixes are stripped, and whitespace-only text is dropped.
// Comments, processing instructions and directives are ignored.
func Parse(r io.Reader, opts ...ParseOption) (*Document, error) {
	cfg := parseConfig{keepAttrs: true, trimSpace: true, nsStripped: true}
	for _, o := range opts {
		o(&cfg)
	}

	dec := xml.NewDecoder(r)
	dec.Strict = true

	var (
		root     *Node
		stack    []*Node
		count    int
		internal string
	)
	push := func(n *Node) error {
		count++
		if cfg.maxNodes > 0 && count > cfg.maxNodes {
			return ErrTooLarge
		}
		if len(stack) == 0 {
			if root != nil {
				return fmt.Errorf("xmltree: multiple root elements")
			}
			root = n
		} else {
			Append(stack[len(stack)-1], n)
		}
		return nil
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Kind: KindElement, Label: elemName(t.Name, cfg.nsStripped)}
			if err := push(n); err != nil {
				return nil, err
			}
			stack = append(stack, n)
			if cfg.keepAttrs {
				for _, a := range t.Attr {
					name := elemName(a.Name, cfg.nsStripped)
					if name == "xmlns" || strings.HasPrefix(name, "xmlns") && !cfg.nsStripped {
						continue
					}
					if a.Name.Space == "xmlns" {
						continue
					}
					attr := Attr(name, a.Value)
					attr.FromAttr = true
					attr.Children[0].FromAttr = true
					if err := push(attr); err != nil {
						return nil, err
					}
					count++ // the text child
					if cfg.maxNodes > 0 && count > cfg.maxNodes {
						return nil, ErrTooLarge
					}
				}
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // ignore text outside the root
			}
			v := string(t)
			if cfg.trimSpace {
				v = strings.TrimSpace(v)
				if v == "" {
					continue
				}
			}
			parent := stack[len(stack)-1]
			// Merge adjacent text runs (entity boundaries split CharData).
			if k := len(parent.Children); k > 0 && parent.Children[k-1].IsText() {
				sep := ""
				if cfg.trimSpace {
					sep = " "
				}
				parent.Children[k-1].Value += sep + v
				continue
			}
			if err := push(&Node{Kind: KindText, Value: v}); err != nil {
				return nil, err
			}
		case xml.Directive:
			// Capture a DOCTYPE's internal subset ("<!DOCTYPE root
			// [ ... ]>") so callers can classify with it.
			if internal == "" {
				internal = internalSubset(string(t))
			}
		case xml.Comment, xml.ProcInst:
			// ignored
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unexpected EOF inside <%s>", stack[len(stack)-1].Label)
	}
	if root == nil {
		return nil, ErrEmpty
	}
	doc := NewDocument(root)
	doc.InternalSubset = internal
	return doc, nil
}

// internalSubset extracts the bracketed declaration block of a DOCTYPE
// directive, or "" if there is none.
func internalSubset(directive string) string {
	if !strings.HasPrefix(strings.TrimSpace(directive), "DOCTYPE") {
		return ""
	}
	open := strings.IndexByte(directive, '[')
	if open < 0 {
		return ""
	}
	close := strings.LastIndexByte(directive, ']')
	if close <= open {
		return ""
	}
	return directive[open+1 : close]
}

// ParseString parses a document from a string.
func ParseString(s string, opts ...ParseOption) (*Document, error) {
	return Parse(strings.NewReader(s), opts...)
}

// ParseFile parses a document from a file on disk.
func ParseFile(path string, opts ...ParseOption) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, opts...)
}

func elemName(n xml.Name, strip bool) string {
	if strip || n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}
