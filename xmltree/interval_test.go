package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the preorder-interval ancestor tests agree with the Dewey-based
// ones on every node pair of random documents.
func TestIntervalMatchesDewey(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r, 2+r.Intn(40))
		all := doc.Nodes()
		for _, a := range all {
			for _, b := range all {
				if a.Contains(b) != a.Dewey.IsAncestorOf(b.Dewey) {
					t.Logf("Contains mismatch: %v vs %v", a.Dewey, b.Dewey)
					return false
				}
				if a.ContainsOrSelf(b) != a.Dewey.IsAncestorOrSelf(b.Dewey) {
					t.Logf("ContainsOrSelf mismatch: %v vs %v", a.Dewey, b.Dewey)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The interval invariants: Start equals Ord, End covers exactly the subtree,
// and siblings' intervals are disjoint.
func TestIntervalInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		doc := randomTree(r, 2+r.Intn(60))
		for _, n := range doc.Nodes() {
			if int(n.Start) != n.Ord {
				t.Fatalf("Start = %d, Ord = %d", n.Start, n.Ord)
			}
			want := n.Ord + n.NodeCount() - 1
			if int(n.End) != want {
				t.Fatalf("End = %d, want %d (subtree of %d nodes at ord %d)",
					n.End, want, n.NodeCount(), n.Ord)
			}
		}
		// Re-finalizing after a structural edit refreshes the intervals.
		doc2 := NewDocument(doc.Root)
		for i, n := range doc2.Nodes() {
			if int(n.Start) != i {
				t.Fatalf("refinalized Start = %d at position %d", n.Start, i)
			}
		}
	}
}
