package xmltree

import (
	"encoding/xml"
	"io"
	"strings"
)

// WriteXML serializes n's subtree as indented XML. Attribute-shaped element
// children marked FromAttr are emitted as real XML attributes of their
// parent; everything else round-trips structurally through Parse.
func WriteXML(w io.Writer, n *Node) error {
	sw := &stickyWriter{w: w}
	writeNode(sw, n, 0)
	return sw.err
}

// XMLString returns the serialized form of n's subtree.
func XMLString(n *Node) string {
	var b strings.Builder
	// Writes to strings.Builder cannot fail.
	_ = WriteXML(&b, n)
	return b.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeNode(w *stickyWriter, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsText() {
		w.WriteString(indent)
		w.WriteString(escapeText(n.Value))
		w.WriteString("\n")
		return
	}

	var attrs []*Node
	var kids []*Node
	for _, c := range n.Children {
		if c.FromAttr && c.HasSingleTextChild() {
			attrs = append(attrs, c)
		} else {
			kids = append(kids, c)
		}
	}

	w.WriteString(indent)
	w.WriteString("<")
	w.WriteString(n.Label)
	for _, a := range attrs {
		w.WriteString(" ")
		w.WriteString(a.Label)
		w.WriteString(`="`)
		w.WriteString(escapeAttr(a.TextValue()))
		w.WriteString(`"`)
	}
	if len(kids) == 0 {
		w.WriteString("/>\n")
		return
	}
	// Inline a single text child for compactness.
	if len(kids) == 1 && kids[0].IsText() {
		w.WriteString(">")
		w.WriteString(escapeText(kids[0].Value))
		w.WriteString("</")
		w.WriteString(n.Label)
		w.WriteString(">\n")
		return
	}
	w.WriteString(">\n")
	for _, c := range kids {
		writeNode(w, c, depth+1)
	}
	w.WriteString(indent)
	w.WriteString("</")
	w.WriteString(n.Label)
	w.WriteString(">\n")
}

func escapeText(s string) string {
	var b strings.Builder
	// xml.EscapeText writes to a Writer and never fails on a Builder.
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

func escapeAttr(s string) string {
	return escapeText(s)
}
