package xmltree

import (
	"strings"
)

// Kind discriminates the two node kinds of the model.
type Kind uint8

const (
	// KindElement is an element node carrying a Label (tag name).
	KindElement Kind = iota
	// KindText is a text node carrying a Value.
	KindText
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindText:
		return "text"
	default:
		return "invalid"
	}
}

// Node is a node of an XML tree. Element nodes have a Label and children;
// text nodes have a Value and no children. XML attributes are normalized
// during parsing into element nodes with FromAttr set and a single text
// child, matching the paper's uniform treatment of attributes.
type Node struct {
	Kind  Kind
	Label string // tag name for elements; empty for text nodes
	Value string // text content for text nodes; empty for elements

	// FromAttr marks element nodes synthesized from XML attributes.
	FromAttr bool

	Parent   *Node
	Children []*Node

	// Dewey is the node identifier within its document; assigned by
	// NewDocument and by Parse.
	Dewey Dewey

	// Ord is the preorder position of the node within its document.
	Ord int

	// Start and End are the node's preorder interval within its document,
	// assigned by NewDocument: Start is the node's own preorder position
	// (== Ord) and End is the largest preorder position in its subtree.
	// They make ancestor/descendant tests and subtree containment two
	// integer compares (see Contains) on the search→snippet hot path;
	// Dewey remains the identifier for LCA depth and rendering. Valid only
	// on finalized documents (int32 bounds document size at ~2G nodes).
	Start, End int32

	// Origin, when non-nil, points at the node this one was projected
	// from (see Project). Query-result trees and snippet trees keep
	// Origin chains back to the source document.
	Origin *Node
}

// IsElement reports whether n is an element node.
func (n *Node) IsElement() bool { return n.Kind == KindElement }

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Kind == KindText }

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Depth returns the number of edges from n to its tree root.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// HasSingleTextChild reports whether n is an element whose only child is a
// text node — the structural shape of an attribute in the paper's model.
func (n *Node) HasSingleTextChild() bool {
	return n.IsElement() && len(n.Children) == 1 && n.Children[0].IsText()
}

// TextValue returns the value of n's single text child, or the empty string
// if n does not have exactly one text child.
func (n *Node) TextValue() string {
	if n.HasSingleTextChild() {
		return n.Children[0].Value
	}
	return ""
}

// Text returns the concatenation of all text values in n's subtree in
// document order, separated by single spaces.
func (n *Node) Text() string {
	var parts []string
	n.Walk(func(m *Node) bool {
		if m.IsText() && m.Value != "" {
			parts = append(parts, m.Value)
		}
		return true
	})
	return strings.Join(parts, " ")
}

// Walk visits n and its descendants in document order. If fn returns false
// for a node, that node's descendants are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// NodeCount returns the number of nodes in n's subtree, including n.
func (n *Node) NodeCount() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// EdgeCount returns the number of edges in n's subtree. Snippet size bounds
// in the paper are expressed in edges.
func (n *Node) EdgeCount() int {
	c := n.NodeCount()
	if c == 0 {
		return 0
	}
	return c - 1
}

// ChildElement returns the first child element labeled label, or nil.
func (n *Node) ChildElement(label string) *Node {
	for _, c := range n.Children {
		if c.IsElement() && c.Label == label {
			return c
		}
	}
	return nil
}

// ChildElements returns all child elements labeled label.
func (n *Node) ChildElements(label string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsElement() && c.Label == label {
			out = append(out, c)
		}
	}
	return out
}

// Descendant returns the first element in n's subtree (in document order)
// whose label path from n matches the given labels, or nil. For example,
// Descendant("store", "city") finds the first city under the first store
// that has one.
func (n *Node) Descendant(labels ...string) *Node {
	cur := n
	for _, l := range labels {
		next := cur.ChildElement(l)
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// Contains reports whether m lies strictly inside n's subtree, using the
// preorder intervals assigned by NewDocument. Both nodes must belong to the
// same finalized document; results are unspecified otherwise.
func (n *Node) Contains(m *Node) bool {
	return n.Start < m.Start && m.Start <= n.End
}

// ContainsOrSelf reports whether m is n or lies inside n's subtree, using
// the preorder intervals assigned by NewDocument. Both nodes must belong to
// the same finalized document.
func (n *Node) ContainsOrSelf(m *Node) bool {
	return n.Start <= m.Start && m.Start <= n.End
}

// AncestorOrSelfIn returns the nearest ancestor-or-self of n contained in
// set, or nil if none is.
func (n *Node) AncestorOrSelfIn(set map[*Node]bool) *Node {
	for m := n; m != nil; m = m.Parent {
		if set[m] {
			return m
		}
	}
	return nil
}

// PathTo returns the nodes strictly between ancestor and n, plus n itself,
// ordered from just below ancestor down to n. It returns nil if ancestor is
// not an ancestor of n. PathTo(n, n) returns an empty path.
func (n *Node) PathTo(ancestor *Node) []*Node {
	var rev []*Node
	for m := n; m != ancestor; m = m.Parent {
		if m == nil {
			return nil
		}
		rev = append(rev, m)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// String renders a short description of the node for debugging.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.IsText() {
		return "#text(" + n.Value + ")"
	}
	return "<" + n.Label + ">@" + n.Dewey.String()
}

// LCA returns the lowest common ancestor of a and b within their shared
// tree, or nil if they are in different trees.
func LCA(a, b *Node) *Node {
	da, db := a.Depth(), b.Depth()
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		if a == nil || b == nil {
			return nil
		}
		a, b = a.Parent, b.Parent
	}
	return a
}
