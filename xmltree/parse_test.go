package xmltree

import (
	"strings"
	"testing"
)

const storeXML = `
<retailer>
  <name>Brook Brothers</name>
  <product>apparel</product>
  <store id="s1">
    <state>Texas</state>
    <city>Houston</city>
    <merchandises>
      <clothes><category>suit</category><fitting>man</fitting></clothes>
    </merchandises>
  </store>
</retailer>`

func TestParseBasic(t *testing.T) {
	doc, err := ParseString(storeXML)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Root.Label != "retailer" {
		t.Fatalf("root = %q, want retailer", doc.Root.Label)
	}
	name := doc.Root.ChildElement("name")
	if name == nil || name.TextValue() != "Brook Brothers" {
		t.Fatalf("name = %v", name)
	}
	store := doc.Root.ChildElement("store")
	if store == nil {
		t.Fatal("no store element")
	}
	// The id attribute is normalized to an attribute-shaped child.
	id := store.ChildElement("id")
	if id == nil || !id.FromAttr || id.TextValue() != "s1" {
		t.Fatalf("id attr = %v", id)
	}
	city := store.ChildElement("city")
	if city == nil || city.TextValue() != "Houston" {
		t.Fatalf("city = %v", city)
	}
}

func TestParseAttributesDisabled(t *testing.T) {
	doc, err := ParseString(`<a x="1"><b/></a>`, WithAttributes(false))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Root.ChildElement("x") != nil {
		t.Error("attribute kept despite WithAttributes(false)")
	}
	if doc.Root.ChildElement("b") == nil {
		t.Error("element child lost")
	}
}

func TestParseDeweyAssignment(t *testing.T) {
	doc, err := ParseString(`<a><b><c/></b><d/></a>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := doc.Root.Dewey.String(); got != "/" {
		t.Errorf("root dewey = %s", got)
	}
	b := doc.Root.Children[0]
	c := b.Children[0]
	d := doc.Root.Children[1]
	if b.Dewey.String() != "0" || c.Dewey.String() != "0.0" || d.Dewey.String() != "1" {
		t.Errorf("deweys = %s %s %s", b.Dewey, c.Dewey, d.Dewey)
	}
	// Preorder Ord matches Dewey document order.
	nodes := doc.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Dewey.Compare(nodes[i].Dewey) >= 0 {
			t.Errorf("preorder violates dewey order at %d", i)
		}
		if nodes[i].Ord != i {
			t.Errorf("ord mismatch at %d: %d", i, nodes[i].Ord)
		}
	}
	// NodeAt inverts Dewey assignment.
	for _, n := range nodes {
		if doc.NodeAt(n.Dewey) != n {
			t.Errorf("NodeAt(%s) did not return the node", n.Dewey)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,               // empty
		`<a>`,            // unclosed
		`<a></b>`,        // mismatched
		`<a/><b/>`,       // two roots
		`text only`,      // no element
		`<a><b></a></b>`, // crossed
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseMaxNodes(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 100; i++ {
		b.WriteString("<item>v</item>")
	}
	b.WriteString("</root>")
	if _, err := ParseString(b.String(), WithMaxNodes(50)); err == nil {
		t.Error("expected ErrTooLarge")
	}
	if _, err := ParseString(b.String(), WithMaxNodes(10000)); err != nil {
		t.Errorf("unexpected error under generous limit: %v", err)
	}
}

func TestParseWhitespaceAndEntities(t *testing.T) {
	doc, err := ParseString("<a>\n  <b>x &amp; y</b>\n</a>")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(doc.Root.Children) != 1 {
		t.Fatalf("whitespace text kept: %d children", len(doc.Root.Children))
	}
	if got := doc.Root.Children[0].TextValue(); got != "x & y" {
		t.Errorf("entity text = %q", got)
	}
}

func TestRoundTrip(t *testing.T) {
	doc, err := ParseString(storeXML)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := XMLString(doc.Root)
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !structurallyEqual(doc.Root, doc2.Root) {
		t.Errorf("round trip changed the tree:\n%s\nvs\n%s",
			RenderASCII(doc.Root), RenderASCII(doc2.Root))
	}
}

// structurallyEqual ignores FromAttr (serialization may legally flip the
// attribute-vs-element representation for attribute-shaped nodes) but
// requires identical labels, kinds, values and child order.
func structurallyEqual(a, b *Node) bool {
	if a.Kind != b.Kind || a.Label != b.Label || a.Value != b.Value {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !structurallyEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestRenderASCII(t *testing.T) {
	doc, _ := ParseString(`<a><b>x</b><c><d>y</d></c></a>`)
	got := RenderASCII(doc.Root)
	want := "a\n├─ b:\"x\"\n└─ c\n   └─ d:\"y\"\n"
	if got != want {
		t.Errorf("RenderASCII:\n%q\nwant\n%q", got, want)
	}
}

func TestRenderInline(t *testing.T) {
	doc, _ := ParseString(`<a><b>x</b><c><d>y</d></c></a>`)
	got := RenderInline(doc.Root)
	want := `a(b:"x", c(d:"y"))`
	if got != want {
		t.Errorf("RenderInline = %q, want %q", got, want)
	}
}
