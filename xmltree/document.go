package xmltree

// Document is a finalized XML tree: Dewey identifiers and preorder positions
// have been assigned to every node, and the preorder node sequence is
// materialized for index construction.
type Document struct {
	Root *Node

	// InternalSubset holds the DTD declarations of the document's
	// DOCTYPE internal subset, when Parse found one ("" otherwise).
	InternalSubset string

	nodes []*Node // preorder
}

// NewDocument finalizes the tree rooted at root into a Document: it fixes
// parent pointers, assigns Dewey identifiers (root = empty Dewey), preorder
// positions and preorder intervals (Start/End), and materializes the node
// sequence. The tree is modified in place; root may be nil, producing an
// empty document.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root}
	if root == nil {
		return d
	}
	root.Parent = nil
	// Pass 1: size the node sequence and a shared Dewey arena. One exact
	// allocation then serves every identifier — finalization runs per
	// result materialization on the search hot path, and per-node Dewey
	// allocations dominated its profile.
	count, deweyInts := 0, 0
	var measure func(n *Node, depth int)
	measure = func(n *Node, depth int) {
		count++
		deweyInts += depth
		for _, c := range n.Children {
			measure(c, depth+1)
		}
	}
	measure(root, 0)
	d.nodes = make([]*Node, 0, count)
	arena := make([]int, 0, deweyInts)
	var assign func(n *Node, dw Dewey)
	assign = func(n *Node, dw Dewey) {
		n.Dewey = dw
		n.Ord = len(d.nodes)
		n.Start = int32(n.Ord)
		d.nodes = append(d.nodes, n)
		for i, c := range n.Children {
			c.Parent = n
			// The arena never reallocates (capacity is exact), so the
			// full-capacity slice stays valid and writes cannot bleed
			// into a sibling's identifier.
			start := len(arena)
			arena = append(arena, dw...)
			arena = append(arena, i)
			assign(c, Dewey(arena[start:len(arena):len(arena)]))
		}
		n.End = int32(len(d.nodes) - 1)
	}
	assign(root, Dewey{})
	return d
}

// AdoptFinalized builds a Document around a node sequence whose
// finalization fields (Parent, Children, Dewey, Ord, Start, End) the caller
// has already assigned consistently, with nodes in preorder and nodes[0] the
// root. It performs no validation and exists for loaders — the packed
// persist format stores the preorder layout directly, so reconstructing it
// assigns identifiers in the same pass and a second NewDocument walk would
// only repeat that work.
func AdoptFinalized(nodes []*Node) *Document {
	d := &Document{nodes: nodes}
	if len(nodes) > 0 {
		d.Root = nodes[0]
	}
	return d
}

// Nodes returns all nodes of the document in document (preorder) order. The
// returned slice must not be modified.
func (d *Document) Nodes() []*Node { return d.nodes }

// Len returns the number of nodes in the document.
func (d *Document) Len() int { return len(d.nodes) }

// NodeAt resolves a Dewey identifier to its node, or nil if out of range.
func (d *Document) NodeAt(dw Dewey) *Node {
	n := d.Root
	if n == nil {
		return nil
	}
	for _, i := range dw {
		if i < 0 || i >= len(n.Children) {
			return nil
		}
		n = n.Children[i]
	}
	return n
}

// ByOrd resolves a preorder position to its node, or nil if out of range.
func (d *Document) ByOrd(ord int) *Node {
	if ord < 0 || ord >= len(d.nodes) {
		return nil
	}
	return d.nodes[ord]
}

// Stats summarizes a document's shape; used by experiment reports.
type Stats struct {
	Nodes     int
	Elements  int
	Texts     int
	Attrs     int // elements synthesized from XML attributes
	MaxDepth  int
	Labels    int // distinct element labels
	TextBytes int
}

// ComputeStats walks the document once and returns its Stats.
func (d *Document) ComputeStats() Stats {
	var s Stats
	labels := make(map[string]bool)
	for _, n := range d.nodes {
		s.Nodes++
		if dep := len(n.Dewey); dep > s.MaxDepth {
			s.MaxDepth = dep
		}
		switch n.Kind {
		case KindElement:
			s.Elements++
			labels[n.Label] = true
			if n.FromAttr {
				s.Attrs++
			}
		case KindText:
			s.Texts++
			s.TextBytes += len(n.Value)
		}
	}
	s.Labels = len(labels)
	return s
}

// Project builds a new tree containing copies of exactly the nodes of root's
// subtree for which keep returns true, preserving document order and
// ancestor relationships. A kept node whose ancestors are not all kept is
// attached to its nearest kept ancestor. Copies carry Origin pointers to
// their source nodes. It returns nil if no node is kept.
//
// Projections build query-result trees from match sets and snippet trees
// from selected instance sets.
func Project(root *Node, keep func(*Node) bool) *Node {
	var build func(n *Node, parentCopy *Node) *Node
	build = func(n *Node, parentCopy *Node) *Node {
		var copy *Node
		attach := parentCopy
		if keep(n) {
			copy = &Node{
				Kind:     n.Kind,
				Label:    n.Label,
				Value:    n.Value,
				FromAttr: n.FromAttr,
				Origin:   n,
			}
			if parentCopy != nil {
				copy.Parent = parentCopy
				parentCopy.Children = append(parentCopy.Children, copy)
			}
			attach = copy
		}
		for _, c := range n.Children {
			r := build(c, attach)
			if copy == nil && r != nil {
				// A kept descendant with no kept ancestor yet
				// becomes a candidate root. Only the first one
				// survives as the projection root; the caller's
				// keep sets are ancestor-closed in practice.
				copy = r
				attach = parentCopy
			}
		}
		return copy
	}
	return build(root, nil)
}

// ProjectSet is Project with an explicit node set. The set is closed over
// ancestors up to root before projecting, guaranteeing a single connected
// projection rooted at root (if the set is non-empty).
func ProjectSet(root *Node, set map[*Node]bool) *Node {
	if len(set) == 0 {
		return nil
	}
	closed := make(map[*Node]bool, len(set)*2)
	for n := range set {
		for m := n; m != nil; m = m.Parent {
			if closed[m] {
				break
			}
			closed[m] = true
			if m == root {
				break
			}
		}
	}
	closed[root] = true
	return Project(root, func(n *Node) bool { return closed[n] })
}
