package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeweyChild(t *testing.T) {
	root := Dewey{}
	c0 := root.Child(0)
	c01 := c0.Child(1)
	if got := c01.String(); got != "0.1" {
		t.Errorf("Child chain = %q, want 0.1", got)
	}
	// Child must not alias the parent's storage.
	c02 := c0.Child(2)
	if c01[1] != 1 || c02[1] != 2 {
		t.Errorf("Child aliased storage: %v %v", c01, c02)
	}
}

func TestDeweyCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"/", "/", 0},
		{"/", "0", -1},
		{"0", "/", 1},
		{"0.1", "0.1", 0},
		{"0.1", "0.2", -1},
		{"0.2", "0.1", 1},
		{"0", "0.5", -1}, // ancestor precedes descendant
		{"1", "0.5", 1},  // later sibling subtree
		{"0.9", "1", -1}, // document order across subtrees
		{"2.0.1", "2.1", -1},
	}
	for _, c := range cases {
		a, err := ParseDewey(c.a)
		if err != nil {
			t.Fatalf("ParseDewey(%q): %v", c.a, err)
		}
		b, err := ParseDewey(c.b)
		if err != nil {
			t.Fatalf("ParseDewey(%q): %v", c.b, err)
		}
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeweyAncestor(t *testing.T) {
	a := Dewey{0, 1}
	b := Dewey{0, 1, 4, 2}
	if !a.IsAncestorOf(b) {
		t.Errorf("%v should be ancestor of %v", a, b)
	}
	if b.IsAncestorOf(a) {
		t.Errorf("%v should not be ancestor of %v", b, a)
	}
	if a.IsAncestorOf(a) {
		t.Errorf("strict ancestor must exclude self")
	}
	if !a.IsAncestorOrSelf(a) {
		t.Errorf("IsAncestorOrSelf must include self")
	}
	if !(Dewey{}).IsAncestorOf(a) {
		t.Errorf("root is ancestor of everything")
	}
}

func TestDeweyLCA(t *testing.T) {
	a := Dewey{0, 1, 2}
	b := Dewey{0, 1, 5, 3}
	if got := a.LCA(b).String(); got != "0.1" {
		t.Errorf("LCA = %s, want 0.1", got)
	}
	if got := a.LCA(a); !got.Equal(a) {
		t.Errorf("LCA(a,a) = %v, want a", got)
	}
	if got := a.LCA(Dewey{9}); len(got) != 0 {
		t.Errorf("disjoint LCA = %v, want root", got)
	}
}

func TestParseDeweyRejectsGarbage(t *testing.T) {
	for _, s := range []string{"a", "1..2", "-1", "1.x", "1.-2"} {
		if _, err := ParseDewey(s); err == nil {
			t.Errorf("ParseDewey(%q) succeeded, want error", s)
		}
	}
}

func randomDewey(r *rand.Rand) Dewey {
	n := r.Intn(6)
	d := make(Dewey, n)
	for i := range d {
		d[i] = r.Intn(5)
	}
	return d
}

// Property: Compare is a total order consistent with String round-trips and
// with the ancestor relation.
func TestDeweyProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	roundTrip := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDewey(r)
		p, err := ParseDewey(d.String())
		return err == nil && p.Equal(d)
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Errorf("round trip: %v", err)
	}

	antisym := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomDewey(r), randomDewey(r)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, cfg); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}

	ancestorOrder := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDewey(r)
		b := a.Child(r.Intn(4)).Child(r.Intn(4))
		return a.IsAncestorOf(b) && a.Compare(b) < 0 && a.LCA(b).Equal(a)
	}
	if err := quick.Check(ancestorOrder, cfg); err != nil {
		t.Errorf("ancestor order: %v", err)
	}

	lcaCommutes := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomDewey(r), randomDewey(r)
		l := a.LCA(b)
		return l.Equal(b.LCA(a)) &&
			l.IsAncestorOrSelf(a) && l.IsAncestorOrSelf(b)
	}
	if err := quick.Check(lcaCommutes, cfg); err != nil {
		t.Errorf("lca: %v", err)
	}
}
