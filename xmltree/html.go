package xmltree

import (
	"html"
	"strings"
	"unicode"
)

// RenderHTML renders n's subtree as a nested HTML list with the given
// keywords highlighted (<mark>), for the web demo: element labels as
// <span class="tag">, attribute values inline, text quoted. Keywords are
// matched on whole lowercase tokens, like the query tokenizer. The output
// is fully escaped.
func RenderHTML(n *Node, keywords []string) string {
	kw := make(map[string]bool, len(keywords))
	for _, k := range keywords {
		kw[strings.ToLower(k)] = true
	}
	var b strings.Builder
	b.WriteString(`<ul class="xmltree">`)
	renderHTMLNode(&b, n, kw)
	b.WriteString(`</ul>`)
	return b.String()
}

func renderHTMLNode(b *strings.Builder, n *Node, kw map[string]bool) {
	b.WriteString("<li>")
	switch {
	case n.IsText():
		b.WriteString(`"`)
		b.WriteString(highlight(n.Value, kw))
		b.WriteString(`"`)
	case n.HasSingleTextChild():
		b.WriteString(`<span class="tag">`)
		b.WriteString(highlight(n.Label, kw))
		b.WriteString(`</span>: "`)
		b.WriteString(highlight(n.Children[0].Value, kw))
		b.WriteString(`"`)
	default:
		b.WriteString(`<span class="tag">`)
		b.WriteString(highlight(n.Label, kw))
		b.WriteString(`</span>`)
		if len(n.Children) > 0 {
			b.WriteString("<ul>")
			for _, c := range n.Children {
				renderHTMLNode(b, c, kw)
			}
			b.WriteString("</ul>")
		}
	}
	b.WriteString("</li>")
}

// highlight escapes s and wraps keyword tokens in <mark>. Token boundaries
// follow the index tokenizer: letters and digits form tokens.
func highlight(s string, kw map[string]bool) string {
	if len(kw) == 0 {
		return html.EscapeString(s)
	}
	var b strings.Builder
	var tok strings.Builder
	flush := func() {
		if tok.Len() == 0 {
			return
		}
		t := tok.String()
		if kw[strings.ToLower(t)] {
			b.WriteString("<mark>")
			b.WriteString(html.EscapeString(t))
			b.WriteString("</mark>")
		} else {
			b.WriteString(html.EscapeString(t))
		}
		tok.Reset()
	}
	for _, r := range s {
		if isTokenRune(r) {
			tok.WriteRune(r)
		} else {
			flush()
			b.WriteString(html.EscapeString(string(r)))
		}
	}
	flush()
	return b.String()
}

// isTokenRune mirrors the index tokenizer's token alphabet (letters and
// digits) so highlighting agrees with matching.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}
