package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSample() *Document {
	root := Elem("retailer",
		Attr("name", "Brook Brothers"),
		Attr("product", "apparel"),
		Elem("store",
			Attr("state", "Texas"),
			Attr("city", "Houston"),
			Elem("merchandises",
				Elem("clothes", Attr("category", "suit"), Attr("fitting", "man")),
				Elem("clothes", Attr("category", "outwear"), Attr("fitting", "woman")),
			),
		),
	)
	return NewDocument(root)
}

func TestNodeHelpers(t *testing.T) {
	doc := buildSample()
	root := doc.Root
	if root.Depth() != 0 {
		t.Errorf("root depth = %d", root.Depth())
	}
	store := root.ChildElement("store")
	m := store.ChildElement("merchandises")
	if m.Depth() != 2 {
		t.Errorf("merchandises depth = %d", m.Depth())
	}
	if got := len(root.ChildElements("store")); got != 1 {
		t.Errorf("stores = %d", got)
	}
	suit := root.Descendant("store", "merchandises", "clothes", "category")
	if suit == nil || suit.TextValue() != "suit" {
		t.Errorf("Descendant navigation = %v", suit)
	}
	if got := root.NodeCount(); got != 21 {
		t.Errorf("NodeCount = %d, want 21", got)
	}
	if got := root.EdgeCount(); got != 20 {
		t.Errorf("EdgeCount = %d, want 20", got)
	}
	if got := m.Root(); got != root {
		t.Errorf("Root() = %v", got)
	}
	txt := root.Text()
	if txt == "" || !contains(txt, "Houston") || !contains(txt, "suit") {
		t.Errorf("Text() = %q", txt)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLCANode(t *testing.T) {
	doc := buildSample()
	store := doc.Root.ChildElement("store")
	clothes := store.ChildElement("merchandises").Children
	got := LCA(clothes[0], clothes[1])
	if got == nil || got.Label != "merchandises" {
		t.Errorf("LCA = %v", got)
	}
	if LCA(doc.Root, clothes[0]) != doc.Root {
		t.Errorf("LCA with root must be root")
	}
	if LCA(clothes[0], clothes[0]) != clothes[0] {
		t.Errorf("LCA self")
	}
	// LCA agrees with Dewey LCA.
	dl := clothes[0].Dewey.LCA(clothes[1].Dewey)
	if doc.NodeAt(dl) != got {
		t.Errorf("Dewey LCA disagrees with pointer LCA")
	}
}

func TestPathTo(t *testing.T) {
	doc := buildSample()
	store := doc.Root.ChildElement("store")
	cat := doc.Root.Descendant("store", "merchandises", "clothes", "category")
	path := cat.PathTo(store)
	if len(path) != 3 {
		t.Fatalf("path len = %d, want 3", len(path))
	}
	if path[0].Label != "merchandises" || path[2] != cat {
		t.Errorf("path = %v", path)
	}
	if got := cat.PathTo(cat); len(got) != 0 {
		t.Errorf("PathTo self = %v", got)
	}
	other := Elem("other")
	if got := cat.PathTo(other); got != nil {
		t.Errorf("PathTo non-ancestor = %v", got)
	}
}

func TestProjectSet(t *testing.T) {
	doc := buildSample()
	store := doc.Root.ChildElement("store")
	city := store.ChildElement("city")
	cat := doc.Root.Descendant("store", "merchandises", "clothes", "category")

	proj := ProjectSet(doc.Root, map[*Node]bool{city: true, cat: true})
	if proj == nil || proj.Label != "retailer" {
		t.Fatalf("projection root = %v", proj)
	}
	// The projection contains the ancestor closure only.
	pd := NewDocument(proj)
	var labels []string
	for _, n := range pd.Nodes() {
		if n.IsElement() {
			labels = append(labels, n.Label)
		}
	}
	want := []string{"retailer", "store", "city", "merchandises", "clothes", "category"}
	if len(labels) != len(want) {
		t.Fatalf("projected labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("projected labels = %v, want %v", labels, want)
		}
	}
	// Origin pointers chain back to the source tree.
	if pd.Root.Origin != doc.Root {
		t.Error("origin of projected root not set")
	}
	// Text children of kept attribute-shaped nodes are not kept unless
	// selected; city projects as a bare element here.
	cityCopy := pd.Root.Descendant("store", "city")
	if cityCopy == nil {
		t.Fatal("city lost in projection")
	}
	if len(cityCopy.Children) != 0 {
		t.Errorf("city copy has children %v; text was not selected", cityCopy.Children)
	}
}

func TestProjectSetWithText(t *testing.T) {
	doc := buildSample()
	store := doc.Root.ChildElement("store")
	city := store.ChildElement("city")
	set := map[*Node]bool{city: true, city.Children[0]: true}
	proj := ProjectSet(doc.Root, set)
	pd := NewDocument(proj)
	cityCopy := pd.Root.Descendant("store", "city")
	if cityCopy.TextValue() != "Houston" {
		t.Errorf("city text lost: %v", RenderInline(proj))
	}
}

func TestProjectEmpty(t *testing.T) {
	doc := buildSample()
	if got := ProjectSet(doc.Root, nil); got != nil {
		t.Errorf("empty projection = %v", got)
	}
}

func TestComputeStats(t *testing.T) {
	doc := buildSample()
	s := doc.ComputeStats()
	if s.Nodes != 21 || s.Elements != 13 || s.Texts != 8 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxDepth != 5 {
		t.Errorf("max depth = %d", s.MaxDepth)
	}
	if s.Labels != 10 {
		t.Errorf("labels = %d", s.Labels)
	}
}

// randomTree builds a random tree with n element nodes for property tests.
func randomTree(r *rand.Rand, n int) *Document {
	labels := []string{"a", "b", "c", "d", "e"}
	nodes := []*Node{Elem(labels[r.Intn(len(labels))])}
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		var child *Node
		if r.Intn(4) == 0 {
			child = Attr(labels[r.Intn(len(labels))], "v")
		} else {
			child = Elem(labels[r.Intn(len(labels))])
		}
		Append(parent, child)
		nodes = append(nodes, child)
	}
	return NewDocument(nodes[0])
}

// Property: in any document, pointer LCA and Dewey LCA agree, and document
// order by Ord equals document order by Dewey.
func TestDocumentProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r, 2+r.Intn(40))
		ns := doc.Nodes()
		a := ns[r.Intn(len(ns))]
		b := ns[r.Intn(len(ns))]
		l := LCA(a, b)
		if doc.NodeAt(a.Dewey.LCA(b.Dewey)) != l {
			return false
		}
		if (a.Ord < b.Ord) != (a.Dewey.Compare(b.Dewey) < 0) && a != b {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ProjectSet yields a connected subtree whose node origins are
// exactly the ancestor closure of the selected set.
func TestProjectProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r, 2+r.Intn(40))
		ns := doc.Nodes()
		set := map[*Node]bool{}
		for i := 0; i < 1+r.Intn(5); i++ {
			set[ns[r.Intn(len(ns))]] = true
		}
		proj := ProjectSet(doc.Root, set)
		if proj == nil {
			return false
		}
		// Compute expected closure.
		closure := map[*Node]bool{doc.Root: true}
		for n := range set {
			for m := n; m != nil; m = m.Parent {
				closure[m] = true
			}
		}
		seen := 0
		ok := true
		proj.Walk(func(c *Node) bool {
			seen++
			if c.Origin == nil || !closure[c.Origin] {
				ok = false
			}
			// Connectivity: every non-root copy has a parent.
			if c != proj && c.Parent == nil {
				ok = false
			}
			return true
		})
		return ok && seen == len(closure)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
