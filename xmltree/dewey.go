// Package xmltree provides the XML document model used throughout eXtract:
// an ordered labeled tree with Dewey identifiers, parsing from standard XML
// syntax, serialization, rendering and tree projections.
//
// The model follows the paper's view of XML data: element nodes carry labels
// (tags), text nodes carry values, and XML attributes are normalized into
// element nodes with a single text child so that the XSeek-style node
// classification (entity / attribute / connection) applies uniformly.
package xmltree

import (
	"fmt"
	"strconv"
	"strings"
)

// Dewey is a hierarchical node identifier. The root of a document has the
// empty Dewey; the i-th child (0-based) of a node with identifier d has
// identifier d.i. Dewey identifiers order nodes in document order and make
// ancestor tests and lowest-common-ancestor computation O(depth).
type Dewey []int

// Child returns the Dewey identifier of the i-th child of d. The result does
// not share storage with d.
func (d Dewey) Child(i int) Dewey {
	c := make(Dewey, len(d)+1)
	copy(c, d)
	c[len(d)] = i
	return c
}

// Clone returns an independent copy of d.
func (d Dewey) Clone() Dewey {
	c := make(Dewey, len(d))
	copy(c, d)
	return c
}

// Compare orders Dewey identifiers in document order: ancestors precede
// descendants, and siblings order by child index. It returns -1, 0 or +1.
func (d Dewey) Compare(o Dewey) int {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		switch {
		case d[i] < o[i]:
			return -1
		case d[i] > o[i]:
			return 1
		}
	}
	switch {
	case len(d) < len(o):
		return -1
	case len(d) > len(o):
		return 1
	}
	return 0
}

// Equal reports whether d and o identify the same node.
func (d Dewey) Equal(o Dewey) bool { return d.Compare(o) == 0 }

// IsAncestorOf reports whether d is a strict ancestor of o.
func (d Dewey) IsAncestorOf(o Dewey) bool {
	if len(d) >= len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// IsAncestorOrSelf reports whether d is o or a strict ancestor of o.
func (d Dewey) IsAncestorOrSelf(o Dewey) bool {
	return d.Equal(o) || d.IsAncestorOf(o)
}

// LCA returns the Dewey identifier of the lowest common ancestor of d and o:
// their longest common prefix.
func (d Dewey) LCA(o Dewey) Dewey {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	i := 0
	for i < n && d[i] == o[i] {
		i++
	}
	return d[:i].Clone()
}

// Level returns the depth of the node identified by d; the root has level 0.
func (d Dewey) Level() int { return len(d) }

// String renders d as dot-separated child indices; the root renders as "/".
func (d Dewey) String() string {
	if len(d) == 0 {
		return "/"
	}
	var b strings.Builder
	for i, c := range d {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// ParseDewey parses the textual form produced by String. It accepts "/" for
// the root and dot-separated non-negative integers otherwise.
func ParseDewey(s string) (Dewey, error) {
	if s == "/" || s == "" {
		return Dewey{}, nil
	}
	parts := strings.Split(s, ".")
	d := make(Dewey, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("xmltree: invalid dewey component %q in %q", p, s)
		}
		d[i] = v
	}
	return d, nil
}
