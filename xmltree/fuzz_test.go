package xmltree

import (
	"testing"
)

// FuzzParse checks that whatever Parse accepts, WriteXML emits in a form
// Parse accepts again with the same structure — and that rejection never
// panics. Runs its seed corpus under plain `go test`; `go test -fuzz`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>x</b><b>y</b></a>`,
		`<a k="v"><c/></a>`,
		`<a>text <b/> tail</a>`,
		`<a xmlns:n="u"><n:b/></a>`,
		`<!DOCTYPE a [<!ELEMENT a (b*)>]><a><b/></a>`,
		`<a><![CDATA[raw <stuff>]]></a>`,
		`<a>&amp;&lt;&gt;</a>`,
		`<a`, `</a>`, `<a><b></a></b>`, ``, `plain`,
		"<a>\xff\xfe</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src, WithMaxNodes(10_000))
		if err != nil {
			return
		}
		out := XMLString(doc.Root)
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse failed: %v\ninput: %q\nserialized: %q", err, src, out)
		}
		// Element structure is preserved (text may merge/trim).
		if a, b := countKind(doc.Root, KindElement), countKind(doc2.Root, KindElement); a != b {
			t.Fatalf("element count %d -> %d\ninput: %q", a, b, src)
		}
	})
}

func countKind(n *Node, k Kind) int {
	c := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == k {
			c++
		}
		return true
	})
	return c
}

// FuzzParseDewey checks ParseDewey/String round trips and that Compare
// never panics on arbitrary parsed values.
func FuzzParseDewey(f *testing.F) {
	for _, s := range []string{"/", "0", "1.2.3", "9.9.9.9", "x", "-1", "1..2", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDewey(s)
		if err != nil {
			return
		}
		rt, err := ParseDewey(d.String())
		if err != nil || !rt.Equal(d) {
			t.Fatalf("round trip: %q -> %v -> %v (%v)", s, d, rt, err)
		}
		_ = d.Compare(Dewey{1, 2})
		_ = d.IsAncestorOf(Dewey{0})
	})
}
