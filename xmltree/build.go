package xmltree

// Builders for constructing trees programmatically: tests, generators and
// examples assemble documents with Elem / Txt / Attr and finalize them with
// NewDocument.

// Elem returns a new element node with the given label and children. Parent
// pointers of the children are set; Dewey assignment happens in NewDocument.
func Elem(label string, children ...*Node) *Node {
	n := &Node{Kind: KindElement, Label: label}
	for _, c := range children {
		if c == nil {
			continue
		}
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// Txt returns a new text node with the given value.
func Txt(value string) *Node {
	return &Node{Kind: KindText, Value: value}
}

// Attr returns an attribute-shaped element: an element labeled name with a
// single text child carrying value. This is the normalized form both for
// XML attributes and for the paper's attribute nodes.
func Attr(name, value string) *Node {
	return Elem(name, Txt(value))
}

// Append attaches child to parent, maintaining the parent pointer. It
// returns parent for chaining. Dewey identifiers are not updated; call
// NewDocument on the root after structural edits.
func Append(parent, child *Node) *Node {
	if child != nil {
		child.Parent = parent
		parent.Children = append(parent.Children, child)
	}
	return parent
}

// DeepCopy returns an independent copy of n's subtree. Origin pointers of
// the copies point at the originals.
func DeepCopy(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{
		Kind:     n.Kind,
		Label:    n.Label,
		Value:    n.Value,
		FromAttr: n.FromAttr,
		Origin:   n,
	}
	for _, ch := range n.Children {
		cc := DeepCopy(ch)
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}
