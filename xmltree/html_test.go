package xmltree

import (
	"strings"
	"testing"
)

func TestRenderHTMLBasic(t *testing.T) {
	doc, err := ParseString(`<store><name>Levis</name><merchandises><clothes><category>jeans</category></clothes></merchandises></store>`)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHTML(doc.Root, []string{"jeans", "store"})
	for _, want := range []string{
		`<mark>store</mark>`,
		`<mark>jeans</mark>`,
		`<span class="tag">name</span>: "Levis"`,
		`<ul class="xmltree">`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "<mark>Levis</mark>") {
		t.Error("non-keyword highlighted")
	}
}

func TestRenderHTMLEscapes(t *testing.T) {
	doc, err := ParseString(`<a><b>x &lt;script&gt; y</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHTML(doc.Root, []string{"script"})
	if strings.Contains(out, "<script>") {
		t.Errorf("unescaped markup: %s", out)
	}
	if !strings.Contains(out, "&lt;<mark>script</mark>&gt;") {
		t.Errorf("escaped highlight wrong: %s", out)
	}
}

func TestRenderHTMLCaseInsensitive(t *testing.T) {
	doc, _ := ParseString(`<a><city>Houston</city></a>`)
	out := RenderHTML(doc.Root, []string{"houston"})
	if !strings.Contains(out, "<mark>Houston</mark>") {
		t.Errorf("case-insensitive highlight failed: %s", out)
	}
}

func TestRenderHTMLWholeTokenOnly(t *testing.T) {
	doc, _ := ParseString(`<a><v>texan texas</v></a>`)
	out := RenderHTML(doc.Root, []string{"texas"})
	if strings.Contains(out, "<mark>texan</mark>") {
		t.Error("substring token highlighted")
	}
	if !strings.Contains(out, "<mark>texas</mark>") {
		t.Error("exact token not highlighted")
	}
}

func TestRenderHTMLNoKeywords(t *testing.T) {
	doc, _ := ParseString(`<a><b>x</b></a>`)
	out := RenderHTML(doc.Root, nil)
	if strings.Contains(out, "<mark>") {
		t.Error("highlight without keywords")
	}
}
