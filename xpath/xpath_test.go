package xpath

import (
	"strings"
	"testing"

	"extract/xmltree"
)

const sample = `
<retailers>
  <retailer>
    <name>Brook Brothers</name>
    <store region="south">
      <city>Houston</city>
      <merchandises>
        <clothes><category>suit</category><price>120</price></clothes>
        <clothes><category>outwear</category><price>80</price></clothes>
      </merchandises>
    </store>
    <store region="north">
      <city>Austin</city>
      <merchandises>
        <clothes><category>skirt</category><price>45</price></clothes>
      </merchandises>
    </store>
  </retailer>
  <retailer>
    <name>Levis</name>
    <store region="west">
      <city>Fresno</city>
      <merchandises>
        <clothes><category>jeans</category><price>60</price></clothes>
      </merchandises>
    </store>
  </retailer>
</retailers>`

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func labels(ns []*xmltree.Node) string {
	var out []string
	for _, n := range ns {
		if n.IsText() {
			out = append(out, `"`+n.Value+`"`)
		} else {
			out = append(out, n.Label)
		}
	}
	return strings.Join(out, ",")
}

func texts(ns []*xmltree.Node) string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Text())
	}
	return strings.Join(out, ",")
}

func sel(t *testing.T, expr string) []*xmltree.Node {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return e.SelectDoc(doc(t))
}

func TestAbsolutePaths(t *testing.T) {
	if got := labels(sel(t, `/retailers`)); got != "retailers" {
		t.Errorf("/retailers = %s", got)
	}
	if got := len(sel(t, `/retailers/retailer`)); got != 2 {
		t.Errorf("retailers = %d", got)
	}
	if got := len(sel(t, `/retailers/retailer/store`)); got != 3 {
		t.Errorf("stores = %d", got)
	}
	if got := len(sel(t, `/wrong/retailer`)); got != 0 {
		t.Errorf("wrong root = %d", got)
	}
}

func TestDescendantAxis(t *testing.T) {
	if got := len(sel(t, `//clothes`)); got != 4 {
		t.Errorf("//clothes = %d", got)
	}
	if got := len(sel(t, `//store//category`)); got != 4 {
		t.Errorf("//store//category = %d", got)
	}
	if got := texts(sel(t, `//retailer/name`)); got != "Brook Brothers,Levis" {
		t.Errorf("names = %s", got)
	}
}

func TestWildcardAndText(t *testing.T) {
	if got := len(sel(t, `/retailers/*`)); got != 2 {
		t.Errorf("/* = %d", got)
	}
	if got := labels(sel(t, `//city/text()`)); got != `"Houston","Austin","Fresno"` {
		t.Errorf("city texts = %s", got)
	}
}

func TestAttributeStep(t *testing.T) {
	// XML attributes are attribute-shaped children; @region selects them.
	if got := len(sel(t, `//store/@region`)); got != 3 {
		t.Errorf("@region = %d", got)
	}
	if got := texts(sel(t, `//store[@region='south']/city`)); got != "Houston" {
		t.Errorf("south city = %s", got)
	}
	// @ requires attribute shape: @merchandises matches nothing.
	if got := len(sel(t, `//store/@merchandises`)); got != 0 {
		t.Errorf("@merchandises = %d", got)
	}
}

func TestPositionalPredicate(t *testing.T) {
	// Positions count within each parent's group: clothes[1] is the
	// first clothes of each merchandises.
	if got := texts(sel(t, `//merchandises/clothes[1]/category`)); got != "suit,skirt,jeans" {
		t.Errorf("clothes[1] = %s", got)
	}
	if got := texts(sel(t, `//merchandises/clothes[2]/category`)); got != "outwear" {
		t.Errorf("clothes[2] = %s", got)
	}
}

func TestComparisonPredicates(t *testing.T) {
	if got := texts(sel(t, `//clothes[category='suit']/price`)); got != "120" {
		t.Errorf("suit price = %s", got)
	}
	// Numeric comparison.
	if got := texts(sel(t, `//clothes[price<100]/category`)); got != "outwear,skirt,jeans" {
		t.Errorf("cheap = %s", got)
	}
	if got := texts(sel(t, `//clothes[price>=80][price<=100]/category`)); got != "outwear" {
		t.Errorf("mid = %s", got)
	}
	if got := texts(sel(t, `//retailer[store/city='Fresno']/name`)); got != "Levis" {
		t.Errorf("fresno retailer = %s", got)
	}
	if got := len(sel(t, `//clothes[category!='suit']`)); got != 3 {
		t.Errorf("non-suit = %d", got)
	}
}

func TestExistenceAndCount(t *testing.T) {
	if got := texts(sel(t, `//retailer[store]/name`)); got != "Brook Brothers,Levis" {
		t.Errorf("with stores = %s", got)
	}
	if got := texts(sel(t, `//retailer[count(store)=2]/name`)); got != "Brook Brothers" {
		t.Errorf("two stores = %s", got)
	}
	if got := texts(sel(t, `//store[count(merchandises/clothes)>1]/city`)); got != "Houston" {
		t.Errorf("big store = %s", got)
	}
}

func TestSelfAndParent(t *testing.T) {
	e := MustCompile(`../city`)
	d := doc(t)
	merch := d.Root.Descendant("retailer", "store", "merchandises")
	got := e.Select(merch)
	if texts(got) != "Houston" {
		t.Errorf("../city = %s", texts(got))
	}
	self := MustCompile(`.`)
	if res := self.Select(merch); len(res) != 1 || res[0] != merch {
		t.Errorf(". = %v", res)
	}
}

func TestRelativeVsAbsolute(t *testing.T) {
	d := doc(t)
	store := d.Root.Descendant("retailer", "store")
	rel := MustCompile(`city`).Select(store)
	if texts(rel) != "Houston" {
		t.Errorf("relative = %s", texts(rel))
	}
	abs := MustCompile(`//city`).Select(store)
	if len(abs) != 3 {
		t.Errorf("absolute from context = %d", len(abs))
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	// Overlapping steps must not duplicate nodes.
	got := sel(t, `//retailer//clothes`)
	if len(got) != 4 {
		t.Fatalf("got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Ord >= got[i].Ord {
			t.Error("not in document order")
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, bad := range []string{
		``, `//`, `a[`, `a[]`, `a[1x]`, `a[@]`, `a[b=]`, `a[b='x]`,
		`a]`, `a[count(b]`, `a[0]`, `foo()`, `a b`,
	} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) succeeded", bad)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustCompile(`[[`)
}

func TestSelectNil(t *testing.T) {
	e := MustCompile(`//a`)
	if got := e.Select(nil); got != nil {
		t.Errorf("nil ctx = %v", got)
	}
	if got := e.SelectDoc(nil); got != nil {
		t.Errorf("nil doc = %v", got)
	}
}
