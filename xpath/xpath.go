// Package xpath evaluates a practical XPath subset over xmltree documents.
// It complements keyword search: where the search engine finds results by
// keywords, XPath selects them structurally — and either way the selected
// subtrees feed the snippet generator (Corpus.SnippetForTree).
//
// Supported grammar:
//
//	path      = ["/"] step { ("/" | "//") step }
//	step      = nodetest { predicate }
//	nodetest  = NAME | "@" NAME | "*" | "text()" | "."  | ".."
//	predicate = "[" expr "]"
//	expr      = NUMBER                     positional, 1-based
//	          | path CMP literal           value comparison
//	          | "count(" path ")" CMP NUM  cardinality comparison
//	          | path                       existence
//	CMP       = "=" | "!=" | "<" | "<=" | ">" | ">="
//	literal   = 'single' | "double" quoted string, or a number
//
// "//" means descendant-or-self. "@name" selects attribute-shaped children
// (XML attributes are normalized into child elements by the parser, so
// @name and name match the same nodes; @ additionally requires the
// attribute shape). Comparisons are numeric when both sides parse as
// numbers, string otherwise. The value of an element is the concatenation
// of its subtree text, as in XPath.
package xpath

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"extract/xmltree"
)

// Expr is a compiled XPath expression.
type Expr struct {
	absolute bool
	steps    []step
	src      string
}

type axis uint8

const (
	axisChild axis = iota
	axisDescendantOrSelf
	axisSelf
	axisParent
)

type step struct {
	axis axis
	test nodeTest
	pred []predicate
}

type testKind uint8

const (
	testName testKind = iota
	testAttr
	testAny
	testText
	testSelf
	testParent
)

type nodeTest struct {
	kind testKind
	name string
}

type predKind uint8

const (
	predPosition predKind = iota
	predExists
	predCompare
	predCount
)

type predicate struct {
	kind     predKind
	position int
	path     *Expr
	op       string
	literal  string
	number   float64
	isNumber bool
}

// String returns the source text the expression was compiled from.
func (e *Expr) String() string { return e.src }

// MustCompile is Compile, panicking on error; for tests and constants.
func MustCompile(s string) *Expr {
	e, err := Compile(s)
	if err != nil {
		panic(err)
	}
	return e
}

// Compile parses an XPath expression.
func Compile(s string) (*Expr, error) {
	p := &parser{src: s, pos: 0}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("xpath: trailing input %q in %q", p.rest(), s)
	}
	e.src = s
	return e, nil
}

// Select evaluates the expression with ctx as the context node. Absolute
// paths start from ctx's tree root. The result is in document order without
// duplicates.
func (e *Expr) Select(ctx *xmltree.Node) []*xmltree.Node {
	if ctx == nil {
		return nil
	}
	start := ctx
	if e.absolute {
		root := ctx.Root()
		// An absolute path's first step tests the root element itself
		// (the document node is implicit).
		return e.evalFrom([]*xmltree.Node{root}, true)
	}
	return e.evalFrom([]*xmltree.Node{start}, false)
}

// SelectDoc evaluates the expression against a document.
func (e *Expr) SelectDoc(doc *xmltree.Document) []*xmltree.Node {
	if doc == nil || doc.Root == nil {
		return nil
	}
	return e.evalFrom([]*xmltree.Node{doc.Root}, e.absolute)
}

// evalFrom runs the steps over the node set. rootTest says the first step
// matches the context nodes themselves rather than their children (the
// absolute-path document-node convention).
func (e *Expr) evalFrom(ctx []*xmltree.Node, rootTest bool) []*xmltree.Node {
	cur := ctx
	for i, st := range e.steps {
		var next []*xmltree.Node
		for _, n := range cur {
			next = append(next, st.candidates(n, rootTest && i == 0)...)
		}
		next = uniqueInDocOrder(next)
		next = st.filter(next)
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// candidates yields the nodes the step's axis+test reaches from n.
func (st step) candidates(n *xmltree.Node, selfAsChild bool) []*xmltree.Node {
	var pool []*xmltree.Node
	switch st.axis {
	case axisSelf:
		pool = []*xmltree.Node{n}
	case axisParent:
		if n.Parent != nil {
			pool = []*xmltree.Node{n.Parent}
		}
	case axisChild:
		if selfAsChild {
			pool = []*xmltree.Node{n}
		} else {
			pool = n.Children
		}
	case axisDescendantOrSelf:
		n.Walk(func(m *xmltree.Node) bool {
			pool = append(pool, m)
			return true
		})
	}
	var out []*xmltree.Node
	for _, c := range pool {
		if st.test.matches(c) {
			out = append(out, c)
		}
	}
	return out
}

func (t nodeTest) matches(n *xmltree.Node) bool {
	switch t.kind {
	case testAny:
		return n.IsElement()
	case testName:
		return n.IsElement() && n.Label == t.name
	case testAttr:
		return n.IsElement() && n.Label == t.name && n.HasSingleTextChild()
	case testText:
		return n.IsText()
	case testSelf, testParent:
		return true
	default:
		return false
	}
}

// filter applies the step's predicates; positional predicates see the
// node's 1-based position among its step siblings (per parent group, as in
// XPath's child axis semantics).
func (st step) filter(nodes []*xmltree.Node) []*xmltree.Node {
	cur := nodes
	for _, p := range st.pred {
		var kept []*xmltree.Node
		// Positions count within sibling groups sharing a parent.
		pos := make(map[*xmltree.Node]int)
		counters := make(map[*xmltree.Node]int)
		for _, n := range cur {
			counters[n.Parent]++
			pos[n] = counters[n.Parent]
		}
		for _, n := range cur {
			if p.holds(n, pos[n]) {
				kept = append(kept, n)
			}
		}
		cur = kept
	}
	return cur
}

func (p predicate) holds(n *xmltree.Node, position int) bool {
	switch p.kind {
	case predPosition:
		return position == p.position
	case predExists:
		return len(p.path.Select(n)) > 0
	case predCount:
		return compare(fmt.Sprint(len(p.path.Select(n))), p.op, p.literal)
	case predCompare:
		for _, m := range p.path.Select(n) {
			if compare(nodeValue(m), p.op, p.literal) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func nodeValue(n *xmltree.Node) string {
	if n.IsText() {
		return n.Value
	}
	return n.Text()
}

// compare applies an XPath comparison: numeric when both sides parse as
// numbers, string otherwise (only = and != are defined for strings; other
// operators compare lexically, which is documented behavior here).
func compare(left, op, right string) bool {
	lf, lerr := strconv.ParseFloat(strings.TrimSpace(left), 64)
	rf, rerr := strconv.ParseFloat(strings.TrimSpace(right), 64)
	if lerr == nil && rerr == nil {
		switch op {
		case "=":
			return lf == rf
		case "!=":
			return lf != rf
		case "<":
			return lf < rf
		case "<=":
			return lf <= rf
		case ">":
			return lf > rf
		case ">=":
			return lf >= rf
		}
		return false
	}
	switch op {
	case "=":
		return left == right
	case "!=":
		return left != right
	case "<":
		return left < right
	case "<=":
		return left <= right
	case ">":
		return left > right
	case ">=":
		return left >= right
	}
	return false
}

func uniqueInDocOrder(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) < 2 {
		return nodes
	}
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Ord < nodes[j].Ord })
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}
