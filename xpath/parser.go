package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest() string {
	if p.pos >= len(p.src) {
		return ""
	}
	r := p.src[p.pos:]
	if len(r) > 20 {
		r = r[:20]
	}
	return r
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) peekByte() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *parser) name() (string, error) {
	start := p.pos
	for !p.eof() && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("xpath: expected name at %q", p.rest())
	}
	return p.src[start:p.pos], nil
}

// parsePath parses a full path expression.
func (p *parser) parsePath() (*Expr, error) {
	e := &Expr{}
	p.skipSpace()
	if p.consume("//") {
		// leading // : descendant-or-self from the root
		e.absolute = true
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		st.axis = axisDescendantOrSelf
		e.steps = append(e.steps, st)
	} else if p.consume("/") {
		e.absolute = true
		if p.eof() {
			// "/" alone selects the root: model as self step.
			e.steps = append(e.steps, step{axis: axisChild, test: nodeTest{kind: testAny}})
			return e, nil
		}
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		e.steps = append(e.steps, st)
	} else {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		e.steps = append(e.steps, st)
	}
	for {
		if p.consume("//") {
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			st.axis = axisDescendantOrSelf
			e.steps = append(e.steps, st)
			continue
		}
		if p.consume("/") {
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			e.steps = append(e.steps, st)
			continue
		}
		return e, nil
	}
}

// parseStep parses one location step with its predicates.
func (p *parser) parseStep() (step, error) {
	st := step{axis: axisChild}
	p.skipSpace()
	switch {
	case p.consume(".."):
		st.axis = axisParent
		st.test = nodeTest{kind: testParent}
	case p.consume("."):
		st.axis = axisSelf
		st.test = nodeTest{kind: testSelf}
	case p.consume("*"):
		st.test = nodeTest{kind: testAny}
	case p.consume("@"):
		n, err := p.name()
		if err != nil {
			return st, err
		}
		st.test = nodeTest{kind: testAttr, name: n}
	case p.consume("text()"):
		st.test = nodeTest{kind: testText}
	default:
		n, err := p.name()
		if err != nil {
			return st, err
		}
		if p.consume("()") {
			return st, fmt.Errorf("xpath: unsupported function %s()", n)
		}
		st.test = nodeTest{kind: testName, name: n}
	}
	for {
		p.skipSpace()
		if !p.consume("[") {
			return st, nil
		}
		pred, err := p.parsePredicate()
		if err != nil {
			return st, err
		}
		p.skipSpace()
		if !p.consume("]") {
			return st, fmt.Errorf("xpath: expected ']' at %q", p.rest())
		}
		st.pred = append(st.pred, pred)
	}
}

func (p *parser) parsePredicate() (predicate, error) {
	p.skipSpace()
	// Positional: integer literal.
	if c := p.peekByte(); c >= '0' && c <= '9' {
		start := p.pos
		for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || n < 1 {
			return predicate{}, fmt.Errorf("xpath: bad position %q", p.src[start:p.pos])
		}
		return predicate{kind: predPosition, position: n}, nil
	}
	// count(path) CMP number
	if p.consume("count(") {
		inner, err := p.parsePath()
		if err != nil {
			return predicate{}, err
		}
		p.skipSpace()
		if !p.consume(")") {
			return predicate{}, fmt.Errorf("xpath: expected ')' at %q", p.rest())
		}
		op, err := p.parseOp()
		if err != nil {
			return predicate{}, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return predicate{}, err
		}
		return predicate{kind: predCount, path: inner, op: op, literal: lit}, nil
	}
	// path [CMP literal]
	inner, err := p.parsePath()
	if err != nil {
		return predicate{}, err
	}
	p.skipSpace()
	if c := p.peekByte(); c == '=' || c == '!' || c == '<' || c == '>' {
		op, err := p.parseOp()
		if err != nil {
			return predicate{}, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return predicate{}, err
		}
		return predicate{kind: predCompare, path: inner, op: op, literal: lit}, nil
	}
	return predicate{kind: predExists, path: inner}, nil
}

func (p *parser) parseOp() (string, error) {
	p.skipSpace()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.consume(op) {
			return op, nil
		}
	}
	return "", fmt.Errorf("xpath: expected comparison at %q", p.rest())
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	if q := p.peekByte(); q == '\'' || q == '"' {
		p.pos++
		i := strings.IndexByte(p.src[p.pos:], q)
		if i < 0 {
			return "", fmt.Errorf("xpath: unterminated string")
		}
		s := p.src[p.pos : p.pos+i]
		p.pos += i + 1
		return s, nil
	}
	// Bare number.
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c == '.' || c == '-' || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("xpath: expected literal at %q", p.rest())
	}
	return p.src[start:p.pos], nil
}
