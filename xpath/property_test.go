package xpath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"extract/xmltree"
)

// Property: on random trees, `//label` selects exactly the elements a
// direct walk finds, in document order.
func TestDescendantMatchesWalk(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		labels := []string{"a", "b", "c"}
		nodes := []*xmltree.Node{xmltree.Elem("root")}
		for len(nodes) < 3+r.Intn(40) {
			parent := nodes[r.Intn(len(nodes))]
			child := xmltree.Elem(labels[r.Intn(len(labels))])
			xmltree.Append(parent, child)
			nodes = append(nodes, child)
		}
		doc := xmltree.NewDocument(nodes[0])
		target := labels[r.Intn(len(labels))]

		got := MustCompile("//" + target).SelectDoc(doc)
		var want []*xmltree.Node
		doc.Root.Walk(func(n *xmltree.Node) bool {
			if n.IsElement() && n.Label == target {
				want = append(want, n)
			}
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FuzzCompile: the parser must reject or accept without panicking, and
// accepted expressions must evaluate without panicking.
func FuzzCompile(f *testing.F) {
	for _, s := range []string{
		`//a`, `/a/b[c='1']/@d`, `a[1]`, `a[count(b)>2]`, `.//..`,
		`a[b][c]`, `*`, `text()`, `[`, `a[`, `//`, `a='x'`, `a[b!='y']`,
	} {
		f.Add(s)
	}
	doc, err := xmltree.ParseString(`<r><a x="1"><b>t</b></a><a x="2"/></r>`)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src)
		if err != nil {
			return
		}
		_ = e.SelectDoc(doc)
	})
}
