package extract

import (
	"io"
	"sort"
	"time"

	"extract/internal/index"
	"extract/internal/serve"
	"extract/internal/telemetry"
)

// This file is the facade's observability surface: every Corpus carries a
// metric registry fed by the serving layer (per-stage query latency
// histograms, cache and failure counters) and by the reload paths, exported
// in Prometheus text format by WriteMetrics and read programmatically with
// QueryLatencies. See OBSERVABILITY.md for the metric-by-metric reference.

// SlowQuery describes one query that crossed the ConfigureSlowQueryLog
// threshold. It is sanitized for logging: Keywords are the query's
// lowercased tokens (never the raw query string), and Err is an error
// class, never an error message — nothing document- or value-derived can
// leak into a log line.
type SlowQuery struct {
	// Keywords are the query's tokenized, lowercased terms.
	Keywords []string
	// TraceID identifies the query end to end: the same ID indexes the
	// RecentTraces ring and is propagated to shard servers on remote
	// backends. Zero only for records produced before tracing existed.
	TraceID uint64
	// Duration is the end-to-end wall time.
	Duration time.Duration
	// Stages maps lifecycle stage (admission, cache, dispatch, eval,
	// snippet) to time spent there; stages the query never entered are
	// absent (a cache hit has no dispatch/eval/snippet).
	Stages map[string]time.Duration
	// Cache is the cache outcome: hit, miss, coalesced, uncacheable, or ""
	// when the query failed before the cache probe.
	Cache string
	// Results is the number of results returned (0 on error).
	Results int
	// Err classifies a failure — overload, timeout, canceled, panic,
	// empty, other — or is "" for success.
	Err string
	// Hops lists the remote call attempts made on the query's behalf, in
	// order. Empty for local backends, cache hits, and coalesced followers
	// (the computing leader's record carries the hops).
	Hops []Hop
}

// Hop describes one remote call attempt a routed query made: which replica
// was asked, whether it was a failover retry, the client-observed wire
// round trip, and — when the shard server speaks wire v2 — the server-side
// stage breakdown it reported. A query that failed over leaves one Hop per
// attempt, so the failed attempts and their causes stay visible next to
// the one that succeeded.
type Hop struct {
	// Kind is the remote call kind: eval, digest, full, or stats.
	Kind string
	// Group is the replica-group label the call targeted ("0".."n-1", or
	// "any" for calls any replica may serve).
	Group string
	// Replica is the network address of the replica this attempt used.
	Replica string
	// Attempt is the zero-based attempt number; attempts after the first
	// are failovers.
	Attempt int
	// Wire is the client-observed round trip, including encode, network,
	// and server time.
	Wire time.Duration
	// ServerDecode, ServerEval, ServerDigest and ServerEncode are the
	// server-reported stage durations (zero when the peer predates wire v2
	// or the attempt failed before a response).
	ServerDecode, ServerEval, ServerDigest, ServerEncode time.Duration
	// Err classifies why the attempt failed ("" on success); it is the
	// failover cause for the retry that follows it.
	Err string
}

// hopsFromInternal converts the serving layer's hop spans to the facade's
// public form (nil in, nil out).
func hopsFromInternal(hops []telemetry.HopSpan) []Hop {
	if len(hops) == 0 {
		return nil
	}
	out := make([]Hop, len(hops))
	for i, h := range hops {
		out[i] = Hop{
			Kind:         h.Kind,
			Group:        h.Group,
			Replica:      h.Replica,
			Attempt:      h.Attempt,
			Wire:         h.Wire,
			ServerDecode: h.ServerDecode,
			ServerEval:   h.ServerEval,
			ServerDigest: h.ServerDigest,
			ServerEncode: h.ServerEncode,
			Err:          h.Err,
		}
	}
	return out
}

// sanitizeSlowQuery converts the serving layer's record into the facade's
// logging-safe form: the raw query string is tokenized the same way the
// index tokenizes documents, and only the tokens are kept.
func sanitizeSlowQuery(r serve.QueryRecord) SlowQuery {
	return SlowQuery{
		Keywords: index.Tokenize(r.Query),
		TraceID:  uint64(r.TraceID),
		Duration: r.Total,
		Stages:   r.Stages,
		Cache:    r.Cache,
		Results:  r.Results,
		Err:      r.ErrKind,
		Hops:     hopsFromInternal(r.Hops),
	}
}

// QueryTrace is one retained query trace from the serving layer's
// recent-trace ring: the local stage breakdown plus every remote hop made
// on the query's behalf. Traces deliberately carry no query text or
// keywords — they are safe to expose on a debug endpoint without leaking
// what users searched for; correlate with the slow-query log by TraceID
// when the query itself is needed.
type QueryTrace struct {
	// TraceID matches the slow-query record and the ID propagated to shard
	// servers.
	TraceID uint64
	// Time is when the trace was recorded (query end).
	Time time.Time
	// Total is the end-to-end serve duration.
	Total time.Duration
	// Stages is the local per-stage breakdown (admission, cache, dispatch,
	// eval, snippet) in execution order; stages the query never entered are
	// absent.
	Stages []TraceStage
	// Cache is the cache outcome: hit, miss, coalesced, or uncacheable.
	Cache string
	// Results is the number of results returned.
	Results int
	// Err classifies the query error ("" on success).
	Err string
	// Kept says why the ring retained this trace: "sampled" (the steady
	// one-in-N sample of traffic) or "slow" (among the slowest seen).
	Kept string
	// Hops lists the remote call attempts made for this query, in order.
	// Empty for local backends and cache hits.
	Hops []Hop
}

// TraceStage is one named local stage timing inside a QueryTrace.
type TraceStage struct {
	// Name is the stage name (admission, cache, dispatch, eval, snippet).
	Name string
	// Duration is the time spent in the stage.
	Duration time.Duration
}

// RecentTraces snapshots the corpus's retained query traces, newest first:
// a steady sample of recent traffic plus the slowest queries seen. The
// ring is bounded and retention is decided per query in nanoseconds, so
// tracing is always on — there is nothing to configure.
func (c *Corpus) RecentTraces() []QueryTrace {
	traces := c.server().RecentTraces()
	out := make([]QueryTrace, len(traces))
	for i, qt := range traces {
		stages := make([]TraceStage, len(qt.Stages))
		for j, st := range qt.Stages {
			stages[j] = TraceStage{Name: st.Name, Duration: st.D}
		}
		out[i] = QueryTrace{
			TraceID: uint64(qt.ID),
			Time:    qt.Time,
			Total:   qt.Total,
			Stages:  stages,
			Cache:   qt.Cache,
			Results: qt.Results,
			Err:     qt.Err,
			Kept:    qt.Kept,
			Hops:    hopsFromInternal(qt.Hops),
		}
	}
	return out
}

// ConfigureSlowQueryLog installs fn as the slow-query hook: every query
// whose end-to-end latency reaches threshold is reported as a sanitized
// SlowQuery after its response is ready. fn runs on the query's goroutine
// and must not block. Like ConfigureServing, it must be called before the
// first query; a zero threshold or nil fn disables the hook.
func (c *Corpus) ConfigureSlowQueryLog(threshold time.Duration, fn func(SlowQuery)) {
	c.slowThreshold = threshold
	c.slowFn = fn
}

// StageLatency summarizes one query-lifecycle stage's latency
// distribution. The pseudo-stage "total" covers the whole query end to
// end; admission and cache count every query, while dispatch, eval and
// snippet count only queries that computed (cache hits skip them).
type StageLatency struct {
	// Stage is total, admission, cache, dispatch, eval, or snippet.
	Stage string
	// Count is the number of recorded observations.
	Count uint64
	// P50, P90, P99 and P999 are latency quantiles; the estimates never
	// under-report and are within 6.25% above the true value.
	P50, P90, P99, P999 time.Duration
	// Max is the largest latency recorded.
	Max time.Duration
}

// queryStageOrder is the order QueryLatencies reports stages in: lifecycle
// order, with the end-to-end distribution first.
var queryStageOrder = []string{"total", "admission", "cache", "dispatch", "eval", "snippet"}

// QueryLatencies reports the corpus's query latency distributions by
// lifecycle stage, in lifecycle order with the end-to-end "total" first.
// Quantiles are computed from lock-free histograms the serving layer
// records into on every query; reading them costs nothing on the query
// path.
func (c *Corpus) QueryLatencies() []StageLatency {
	c.server() // registration happens with the serving layer
	byStage := map[string]*telemetry.HistogramSnapshot{}
	for _, m := range c.reg.Snapshot().Metrics {
		switch m.Name {
		case serve.MetricQuerySeconds:
			byStage["total"] = m.Histogram
		case serve.MetricQueryStageSeconds:
			for _, l := range m.Labels {
				if l.Key == "stage" {
					byStage[l.Value] = m.Histogram
				}
			}
		}
	}
	out := make([]StageLatency, 0, len(queryStageOrder))
	for _, st := range queryStageOrder {
		h := byStage[st]
		if h == nil {
			continue
		}
		out = append(out, StageLatency{
			Stage: st,
			Count: h.Count,
			P50:   time.Duration(h.Quantile(0.5)),
			P90:   time.Duration(h.Quantile(0.9)),
			P99:   time.Duration(h.Quantile(0.99)),
			P999:  time.Duration(h.Quantile(0.999)),
			Max:   time.Duration(h.MaxNs),
		})
	}
	return out
}

// RegisterGauge adds a process-side gauge to the corpus's registry so it
// exports through WriteMetrics next to the serving metrics — extractd uses
// it for its reload-failure and circuit-breaker state. fn is called at
// snapshot time and must be safe to call concurrently. Labels are rendered
// in sorted key order; registering the same name and labels twice keeps
// the first registration.
func (c *Corpus) RegisterGauge(name, help string, fn func() float64, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]telemetry.Label, 0, len(keys))
	for _, k := range keys {
		ls = append(ls, telemetry.L(k, labels[k]))
	}
	c.reg.Gauge(name, help, fn, ls...)
}

// WriteMetrics renders every metric of the corpus in the Prometheus text
// exposition format: query latency histograms per lifecycle stage, cache
// effectiveness and failure counters, reload timings, and any gauges added
// with RegisterGauge. A process serving several corpora should use the
// package-level WriteMetrics to merge them under dataset labels.
func (c *Corpus) WriteMetrics(w io.Writer) error {
	c.server()
	return telemetry.WritePrometheus(w, telemetry.Instance{Snap: c.reg.Snapshot()})
}

// WriteMetrics renders the corpora's metrics as one merged Prometheus text
// exposition, labeling every series with dataset=<name>. Metric names are
// emitted in sorted order with one HELP/TYPE header each, so the output is
// a valid scrape target no matter how many corpora share the process.
func WriteMetrics(w io.Writer, corpora map[string]*Corpus) error {
	names := make([]string, 0, len(corpora))
	for name := range corpora {
		names = append(names, name)
	}
	sort.Strings(names)
	instances := make([]telemetry.Instance, 0, len(names))
	for _, name := range names {
		c := corpora[name]
		c.server()
		instances = append(instances, telemetry.Instance{
			Labels: []telemetry.Label{telemetry.L("dataset", name)},
			Snap:   c.reg.Snapshot(),
		})
	}
	return telemetry.WritePrometheus(w, instances...)
}

// recordReload records one reload into the registry: a duration histogram
// labeled by source (swap, xml, snapshot) and mode (full, delta) plus an
// outcome counter. Failed reloads count but do not pollute the duration
// distribution — an early parse error is not a reload time.
func (c *Corpus) recordReload(source, mode string, start time.Time, err error) {
	if err != nil {
		c.reg.Counter("extract_reloads_total", reloadsHelp, telemetry.L("result", "error")).Inc()
		return
	}
	c.reg.Counter("extract_reloads_total", reloadsHelp, telemetry.L("result", "ok")).Inc()
	c.reg.Histogram("extract_reload_seconds",
		"Reload duration by source (swap, xml, snapshot) and mode (full, delta).",
		telemetry.L("source", source), telemetry.L("mode", mode)).Observe(time.Since(start))
}

const reloadsHelp = "Reloads by result; errored reloads left the old generation serving."

// recordSnapshotSave records one SaveSnapshot duration.
func (c *Corpus) recordSnapshotSave(start time.Time) {
	c.reg.Histogram("extract_snapshot_save_seconds",
		"SaveSnapshot duration: manifest plus changed shard images.").Observe(time.Since(start))
}
