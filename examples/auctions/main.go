// Auctions: snippets over a deeper, more heterogeneous schema (XMark-like),
// generated programmatically. Demonstrates snippet generation at scale:
// result trees with hundreds of edges summarize into ten, and the snippet
// generator also works for result trees produced by an external search
// engine via SnippetForTree.
//
//	go run ./examples/auctions
package main

import (
	"fmt"
	"log"
	"strings"

	"extract"
	"extract/xmltree"
)

// buildData writes an auctions corpus as XML: people with city attributes,
// auctions with bids. Values are deterministic.
func buildData(people, auctions int) string {
	var b strings.Builder
	cities := []string{"Houston", "Lyon", "Osaka", "Quito"}
	names := []string{"Ada", "Ben", "Cora", "Dev", "Eli", "Fay"}
	b.WriteString("<site><people>")
	for i := 0; i < people; i++ {
		fmt.Fprintf(&b, "<person><name>%s %d</name><email>p%d@example.net</email><city>%s</city></person>",
			names[i%len(names)], i, i, cities[i*i%len(cities)])
	}
	b.WriteString("</people><open_auctions>")
	for i := 0; i < auctions; i++ {
		fmt.Fprintf(&b, "<auction><seller>p%d@example.net</seller><price>%d</price><bids>",
			i%people, 10+i*7%500)
		for j := 0; j <= i%4; j++ {
			fmt.Fprintf(&b, "<bid><bidder>p%d@example.net</bidder><amount>%d</amount></bid>",
				(i+j)%people, 20+j*5)
		}
		b.WriteString("</bids></auction>")
	}
	b.WriteString("</open_auctions></site>")
	return b.String()
}

func main() {
	corpus, err := extract.LoadString(buildData(24, 30))
	if err != nil {
		log.Fatal(err)
	}
	st := corpus.Stats()
	fmt.Printf("corpus: %d nodes, entities %s\n\n", st.Nodes, strings.Join(st.Entities, ", "))

	// Person search: keyed by the mined email key.
	hits, err := corpus.Query("person houston", 4, extract.WithMaxResults(2))
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("person result, key %q:\n%s\n", h.Snippet.ResultKey(), h.Snippet.Render())
	}

	// Auction search with a larger bound: bids fold into the snippet.
	hits, err = corpus.Query("auction bidder amount", 8, extract.WithMaxResults(1))
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("auction result (%d edges) summarized in %d edges:\n%s\n",
			h.Result.Size(), h.Snippet.Edges(), h.Snippet.Render())
	}

	// Snippets for externally produced result trees: parse a result tree
	// that "another search engine" emitted as XML and snippet it.
	results, err := corpus.Search("auction price")
	if err != nil || len(results) == 0 {
		log.Fatal("no auction results")
	}
	external, err := xmltree.ParseString(results[0].XML())
	if err != nil {
		log.Fatal(err)
	}
	ext := corpus.SnippetForTree(external, "auction price", 5)
	fmt.Printf("external-tree snippet:\n%s", ext.Render())
}
