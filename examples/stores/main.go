// Stores: the paper's demo scenario (Figure 5). A stores database over
// Texas; the query "store texas" with snippet bound 6 yields snippets that
// let a user tell the Levis store (jeans, mostly for man) from the ESprit
// store (outwear, mostly for woman) at a glance — which the full results,
// dozens of edges each, do not.
//
//	go run ./examples/stores
package main

import (
	"fmt"
	"log"
	"strings"

	"extract"
)

const data = `
<stores>
  <store>
    <name>Levis</name><state>Texas</state><city>Houston</city>
    <merchandises>
      <clothes><category>jeans</category><fitting>man</fitting><situation>casual</situation></clothes>
      <clothes><category>jeans</category><fitting>man</fitting><situation>casual</situation></clothes>
      <clothes><category>jeans</category><fitting>man</fitting><situation>formal</situation></clothes>
      <clothes><category>jeans</category><fitting>woman</fitting><situation>casual</situation></clothes>
      <clothes><category>shirt</category><fitting>man</fitting><situation>casual</situation></clothes>
    </merchandises>
  </store>
  <store>
    <name>ESprit</name><state>Texas</state><city>Austin</city>
    <merchandises>
      <clothes><category>outwear</category><fitting>woman</fitting><situation>casual</situation></clothes>
      <clothes><category>outwear</category><fitting>woman</fitting><situation>formal</situation></clothes>
      <clothes><category>outwear</category><fitting>man</fitting><situation>casual</situation></clothes>
      <clothes><category>outwear</category><fitting>woman</fitting><situation>casual</situation></clothes>
      <clothes><category>skirt</category><fitting>woman</fitting><situation>casual</situation></clothes>
    </merchandises>
  </store>
  <store>
    <name>Gap Reno</name><state>Nevada</state><city>Reno</city>
    <merchandises>
      <clothes><category>suit</category><fitting>man</fitting><situation>formal</situation></clothes>
    </merchandises>
  </store>
</stores>`

func main() {
	corpus, err := extract.LoadString(data)
	if err != nil {
		log.Fatal(err)
	}

	const query, bound = "store texas", 6
	fmt.Printf("query %q, snippet bound %d\n\n", query, bound)

	hits, err := corpus.Query(query, bound)
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range hits {
		fmt.Printf("=== result %d: %s (full result has %d edges) ===\n",
			i+1, h.Snippet.ResultKey(), h.Result.Size())
		fmt.Print(h.Snippet.Render())
		fmt.Printf("covered: %s\n", strings.Join(h.Snippet.Covered(), ", "))
		if skipped := h.Snippet.Skipped(); len(skipped) > 0 {
			fmt.Printf("did not fit: %s\n", strings.Join(skipped, ", "))
		}
		fmt.Println()
	}

	// Raising the bound admits more of the IList (the dominant city, the
	// situation); the snippet stays a connected subtree of the result.
	for _, b := range []int{3, 6, 10} {
		hs, err := corpus.Query(query, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bound %2d: %s\n", b, hs[0].Snippet.Inline())
	}
}
