// Quickstart: load a small XML database, run a keyword query, and print a
// snippet for each result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"extract"
)

const data = `
<library>
  <book>
    <title>The Art of Indexing</title>
    <author>Ada Stone</author>
    <year>1999</year>
    <topic>databases</topic>
  </book>
  <book>
    <title>Trees and Where to Find Them</title>
    <author>Ben Rivera</author>
    <year>2004</year>
    <topic>databases</topic>
  </book>
  <book>
    <title>Keyword Search Explained</title>
    <author>Ada Stone</author>
    <year>2007</year>
    <topic>information retrieval</topic>
  </book>
</library>`

func main() {
	// Load analyzes the data: books become entities (they repeat), and
	// title is mined as their key (unique across instances).
	corpus, err := extract.LoadString(data)
	if err != nil {
		log.Fatal(err)
	}
	stats := corpus.Stats()
	fmt.Printf("entities: %s\n", strings.Join(stats.Entities, ", "))
	if key, ok := corpus.EntityKey("book"); ok {
		fmt.Printf("key(book) = %s\n\n", key)
	}

	// Query returns each result with a snippet no larger than the bound.
	hits, err := corpus.Query("Ada databases", 4)
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range hits {
		fmt.Printf("result %d — key %q, snippet %d edges:\n%s\n",
			i+1, h.Snippet.ResultKey(), h.Snippet.Edges(), h.Snippet.Render())
		fmt.Printf("IList: %s\n\n", strings.Join(h.Snippet.IList(), ", "))
	}
}
