// Movies: the paper's other demo dataset. Shows how the return entity
// changes with the query — searching for a director returns movie results
// keyed by title, while searching "actor …" makes the actor the search
// target — and how dominant features summarize a result (a director's
// signature genre).
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"log"
	"strings"

	"extract"
)

const data = `
<movies>
  <movie>
    <title>Dust and Echoes</title><year>1999</year><genre>western</genre><director>Leone</director>
    <cast>
      <actor><name>Ada Stone</name><role>lead</role></actor>
      <actor><name>Ben Rivera</name><role>supporting</role></actor>
    </cast>
  </movie>
  <movie>
    <title>High Noon Again</title><year>2003</year><genre>western</genre><director>Leone</director>
    <cast>
      <actor><name>Cora Okafor</name><role>lead</role></actor>
      <actor><name>Ada Stone</name><role>supporting</role></actor>
    </cast>
  </movie>
  <movie>
    <title>Silent Harbor</title><year>2005</year><genre>drama</genre><director>Campion</director>
    <cast>
      <actor><name>Ada Stone</name><role>lead</role></actor>
    </cast>
  </movie>
</movies>`

func main() {
	corpus, err := extract.LoadString(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entities: %s\n", strings.Join(corpus.Stats().Entities, ", "))
	if key, ok := corpus.EntityKey("movie"); ok {
		fmt.Printf("key(movie) = %s\n", key)
	}
	if key, ok := corpus.EntityKey("actor"); ok {
		fmt.Printf("key(actor) = %s\n", key)
	}
	fmt.Println()

	show := func(query string, bound int) {
		fmt.Printf("--- %q (bound %d) ---\n", query, bound)
		hits, err := corpus.Query(query, bound)
		if err != nil {
			log.Fatal(err)
		}
		if len(hits) == 0 {
			fmt.Println("no results")
			return
		}
		for _, h := range hits {
			fmt.Printf("key %q, return entity %v\n",
				h.Snippet.ResultKey(), h.Snippet.ReturnEntities())
			fmt.Print(h.Snippet.Render())
		}
		fmt.Println()
	}

	// "Leone western": movie results keyed by title.
	show("Leone western", 5)

	// "movie Ada Stone": the movie entity name is a keyword, so movies
	// are the return entities; each snippet is keyed by its title.
	show("movie Ada Stone", 5)

	// "actor lead": the actor entity name is a keyword; actors become
	// the search target, keyed by name.
	show("actor lead", 3)
}
