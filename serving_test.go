package extract

import (
	"strings"
	"testing"

	"extract/internal/gen"
	"extract/xmltree"
)

// TestServedQueryRepeatsIdentical: on a sharded corpus the facade answers
// repeated queries from the serving layer's cache; every repetition —
// unranked and ranked — must be byte-identical to the first, and the cache
// counters must show the hits.
func TestServedQueryRepeatsIdentical(t *testing.T) {
	sharded := FromDocumentSharded(gen.Figure5Corpus(), nil, 4)
	defer sharded.Close()
	render := func(hits []*Hit) string {
		var b strings.Builder
		for _, h := range hits {
			b.WriteString(h.Result.XML())
			b.WriteString(h.Snippet.Inline())
		}
		return b.String()
	}
	for _, opts := range [][]SearchOption{nil, {WithRanking()}, {WithELCA()}} {
		first, err := sharded.Query("austin store", 10, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := render(first)
		for pass := 0; pass < 3; pass++ {
			hits, err := sharded.Query("austin store", 10, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := render(hits); got != want {
				t.Fatalf("opts %d pass %d: served response drifted\nwant %s\ngot  %s",
					len(opts), pass, want, got)
			}
		}
	}
	st, ok := sharded.QueryCacheStats()
	if !ok {
		t.Fatal("sharded corpus reports no cache stats")
	}
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cache counters not moving: %+v", st)
	}
	// Ranked and unranked share one entry (ranking reorders a copy), so
	// with ELCA as the only extra key there are exactly two entries.
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (ranked/unranked shared; ELCA separate): %+v", st.Entries, st)
	}

	// Unsharded corpora serve through the same layer and report stats too.
	unsharded := FromDocument(gen.Figure5Corpus(), nil)
	defer unsharded.Close()
	if _, err := unsharded.Query("austin store", 10); err != nil {
		t.Fatal(err)
	}
	ust, ok := unsharded.QueryCacheStats()
	if !ok || ust.Misses == 0 {
		t.Fatalf("unsharded corpus must report cache stats: ok=%v %+v", ok, ust)
	}
}

// TestServingLoadOptions wires WithWorkers/WithQueryCache through Load.
func TestServingLoadOptions(t *testing.T) {
	xml := xmltree.XMLString(gen.Figure5Corpus().Root)
	c, err := LoadString(xml, WithShards(3), WithWorkers(2), WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() < 2 {
		t.Fatalf("shards = %d", c.Shards())
	}
	if _, err := c.Query("store texas", 8); err != nil {
		t.Fatal(err)
	}
	st, ok := c.QueryCacheStats()
	if !ok || st.Capacity != 1<<20 {
		t.Fatalf("capacity = %d ok=%v, want the 1 MiB budget", st.Capacity, ok)
	}

	// A zero budget disables caching but serving still answers.
	c2, err := LoadString(xml, WithShards(3), WithQueryCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 2; i++ {
		if _, err := c2.Query("store texas", 8); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := c2.QueryCacheStats(); st.Capacity != 0 || st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache retained state: %+v", st)
	}

	for _, bad := range []Option{WithWorkers(-1), WithQueryCache(-1)} {
		if _, err := LoadString(xml, bad); err == nil {
			t.Fatal("negative serving option accepted")
		}
	}
}
