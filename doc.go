// Package extract is a Go implementation of eXtract, the snippet generation
// system for XML keyword search of Huang, Liu and Chen (VLDB 2008).
//
// Given an XML database, a keyword query and a snippet size bound, eXtract
// produces for every query result a small snippet tree that is:
//
//   - self-contained: it names the entities the result is about,
//   - distinguishable: it carries the result's key (the key attribute value
//     of the result's return entity), like a document title,
//   - representative: it shows the result's dominant features, values whose
//     normalized frequency (dominance score) exceeds their type's average,
//   - small: its edge count never exceeds the bound.
//
// The typical flow:
//
//	corpus, err := extract.LoadFile("retailers.xml")
//	if err != nil { ... }
//	hits, err := corpus.Query("Texas apparel retailer", 10)
//	for _, h := range hits {
//		fmt.Println(h.Snippet.Render())
//	}
//
// Query evaluation (SLCA/ELCA keyword search with XSeek-style result
// construction) is built in, but snippets can also be generated for result
// trees produced elsewhere via Corpus.SnippetForTree — snippet generation
// is orthogonal to the search engine, as in the paper.
//
// # Hot-path architecture
//
// The search→snippet path works on flat integer arrays rather than
// pointers and string keys:
//
//   - xmltree assigns every node a preorder interval (Start, End int32) at
//     finalize time, so ancestor/descendant tests are two integer compares
//     (Node.Contains); Dewey identifiers remain for LCA depths and
//     rendering.
//   - internal/index stores each posting list as parallel slices
//     (Ords/Nodes/Fields), keeping document-order positions in one
//     contiguous int32 array for binary searches and merge scans.
//   - internal/search computes SLCA by a depth-folding merge over the
//     packed lists with a linear stack filter, and ELCA by exclusive
//     counting over the match virtual tree with pooled scratch. Probes
//     into skewed posting lists advance by galloping (exponential +
//     branch-free binary search) past the measured crossover gap, and a
//     result bound (WithMaxResults, SLCA) terminates the scan once the
//     first k answers are provable — see PERFORMANCE.md for the model
//     and the measured constants.
//   - internal/classify interns element labels to dense ids;
//     internal/features collects statistics in one walk into id-indexed
//     slices keyed by packed integers, with collectors reused across
//     results (core.Generator pools them).
//
// # Sharded corpora
//
// Load with WithShards(n) (or FromDocumentSharded) to partition a corpus by
// its top-level entities into contiguous, size-balanced shards, each owning
// its own packed inverted index while classification, mined keys, summary
// and dataguide stay global (internal/shard). A multi-keyword query first
// probes each shard's keyword-presence prefilter (sorted 64-bit keyword
// hashes, persisted with the index) and dispatches work only to shards
// that may contain every keyword — a shard provably missing one is
// skipped without touching its posting lists, which is safe because a
// prefilter miss proves absence (only hits can be false). The surviving
// shards evaluate in parallel; the per-shard SLCA/ELCA sets merge
// root-aware — any non-root
// LCA is shard-local, and the root's own candidacy is decided from the
// per-shard posting lists — through a bounded top-k merge into global
// document order. Queries whose results genuinely cross shards (the root as
// an LCA, root-anchored results) evaluate on a lazily reconstructed
// whole-document corpus, so sharded results and snippets are always
// byte-identical to unsharded ones (pinned by equivalence property tests).
//
// # Query-serving layer
//
// Every query — on a sharded or an unsharded corpus alike — runs through
// internal/serve, the layer that makes the online snippet-generation path
// hold up under sustained, repetitive traffic. The layer is
// corpus-agnostic: it drives any corpus shape through a small backend
// interface (a sharded corpus with one engine per shard, or an unsharded
// corpus with exactly one), so there is a single serving path to maintain
// and both shapes get:
//
//   - A fixed-size worker pool (WithWorkers, default GOMAXPROCS) executing
//     all fanned-out work — per-shard evaluation on sharded corpora,
//     snippet generation on any corpus — bounding that concurrency no
//     matter how many queries are in flight; the goroutine-per-shard-
//     per-query fan-out is gone. (An unsharded corpus has no evaluation
//     fan-out: its single engine evaluates on the calling goroutine.)
//     When every worker is busy, submitters run their own tasks inline,
//     so the pool can never deadlock.
//   - Search engines built once per option combination and reused across
//     queries.
//   - A sharded, size-bounded LRU query cache (WithQueryCache, 0 disables)
//     replaying repeated queries — Corpus.Search result lists, and
//     Corpus.Query result+snippet pairs per bound — without recomputation.
//     Keys are tuples of interned keyword ids (index.Interner), carried in
//     a canonical sorted-tuple encoding whose order-free prefix picks the
//     cache shard; ranking is layered above the cache on a private copy, so
//     ranked and unranked queries share an entry. A singleflight guard
//     coalesces concurrent identical queries onto one computation.
//     Invalidation is explicit: swapping or mutating the corpus behind the
//     serving layer clears the cache atomically (serve.Server.Swap), and
//     in-flight results computed against a swapped-out corpus are returned
//     to their callers but never cached. A TinyLFU-style admission filter
//     guards inserts under eviction pressure: a one-off query can fill
//     spare capacity but never displaces an entry that is asked for more
//     often, so scans of distinct queries cannot flush the warm working
//     set (CacheStats.Rejected counts the refusals).
//
// Cached responses are byte-identical to uncached evaluation (pinned by
// property tests); `benchrunner -serve` measures the payoff as concurrent
// QPS over a Zipf-distributed workload, cold versus warm, for sharded and
// unsharded corpora (the "serve" section of BENCH_search.json — warm
// throughput is well over 5x cold at every recorded size), alongside
// warm/cold latency percentiles from variance-validated runs.
//
// # Observability
//
// Every Corpus carries a metric registry (internal/telemetry) that the
// serving layer records into on every query — an end-to-end latency
// histogram plus one per lifecycle stage entered (admission, cache probe,
// dispatch, evaluation, snippet generation), cache and failure counters —
// and that the reload and snapshot paths time as well. WriteMetrics (on a
// Corpus, or the package-level variant merging several) renders it all in
// the Prometheus text format; extractd serves that at GET /metrics.
// QueryLatencies reads the same histograms as Go values (per-stage
// p50/p90/p99/p999/max). ConfigureSlowQueryLog installs a hook fired for
// every query over a threshold with a sanitized record: tokenized
// keywords and an error class, never the raw query string or error text.
// Corpus.QueryCacheStats remains the plain-Go view of the cache counters
// (extractd serves it as JSON at /stats); it reads the very instruments
// the registry exports, so the two views cannot disagree. OBSERVABILITY.md
// documents every metric, the slow-query line schema, and profiling via
// extractd -pprof.
//
// # Online reload and delta ingestion
//
// Corpus.Reload swaps freshly analyzed data into a serving corpus without
// a restart and without dropping traffic: the data pointer is replaced
// atomically, the serving layer swaps backends and invalidates its cache
// in the same step, and queries already in flight finish against the data
// they started on. The new data may have any shape — a reload can change
// the shard count.
//
// Corpus.ReloadDelta is the incremental variant (internal/ingest): the
// new XML source's top-level entities are hashed with the same
// partitioner a fresh load would use, and only shards whose content hash
// moved are re-tokenized — unchanged shards are adopted from the serving
// generation, document and packed index intact, then rebound to a freshly
// computed global analysis. The result is byte-identical to a fresh full
// load (pinned by property tests); anything structural — root label,
// DOCTYPE subset, shard layout — degrades the delta to exactly the fresh
// build. The swap semantics are Reload's, including the cache epoch bump.
//
// extractd exposes the path per dataset as POST /reload and, with -watch,
// as an mtime poller that reloads a file-backed dataset whenever its
// source changes, skipping (with one log line) datasets whose source file
// disappears until it returns (see cmd/extractd/README.md).
//
// # Snapshots
//
// Corpus.SaveSnapshot writes a corpus as a snapshot directory: a small
// versioned manifest carrying per-shard content hashes, a packed
// global-analysis image, and one packed image per shard (internal/ingest,
// reusing internal/persist's fuzzed codec). LoadSnapshot serves straight
// off the memory-mapped images — no XML parse, no re-analysis — and
// Corpus.ReloadSnapshot refreshes a serving corpus from a snapshot
// incrementally, decoding only the images whose content hash moved.
// Snapshot writes are themselves incremental (unchanged shard images are
// not re-encoded) and the manifest is written last, atomically, so
// refreshing a snapshot directory under a watcher is safe. extractd
// serves snapshots directly via -data name=dir.xtsnap. The "reload"
// section of BENCH_search.json records the payoff: after a one-entity
// edit of a 100k-node corpus, an XML delta reload modestly beats a full
// one (both still parse and re-analyze), while a snapshot delta reload
// beats a full snapshot load severalfold — and either snapshot reload is
// two orders of magnitude cheaper than any XML path.
//
// # Distributed serving
//
// Connect opens a corpus whose evaluation runs on a remote shard-server
// tier (internal/remote): shard servers (extractd -shard-server) each own
// a replica group's subset of a sharded snapshot, and a stateless router
// — a serve.Backend like any other — fans queries out over a checksummed
// wire protocol and merges answers with the same root-aware procedure as
// the local sharded path, so routed results, snippets and ranking are
// byte-identical to a local corpus (pinned by property tests). Replica
// groups fail over: a dead replica degrades to its peers with zero
// failed queries, and only classified errors surface. Placement is a
// pure function of the snapshot manifest (rendezvous hashing over shard
// content hashes), so routers and servers agree without a coordinator,
// and every response carries a generation fingerprint that turns reload
// windows into clean retries instead of mixed answers. Operations that
// need local documents (XPath, SaveSnapshot, delta reload) return
// ErrRemoteCorpus. See cmd/extractd/README.md for the deployment
// runbook.
//
// # Persisted indexes
//
// Corpus.SaveIndex / LoadIndex persist an analyzed corpus in a versioned
// binary format (internal/persist). Version 2, the packed format, is
// slab-oriented: a string table plus length-prefixed little-endian int32
// slabs for the preorder tree arrays and the packed posting lists, with the
// DTD, DOCTYPE internal subset, classification, keys, structural summary
// and dataguide all serialized — round trips are lossless. The reader
// memory-maps (or bulk-reads) the file and reconstructs nodes, intervals,
// Dewey arena and postings without re-tokenizing anything, decoding the
// tree and posting sections concurrently; loading a 100k-node corpus is an
// order of magnitude faster than the legacy rebuild path (the "persist"
// section of BENCH_search.json). Version 3 puts the same stream behind a
// per-section CRC-32C table; version 4, the format Save writes, appends
// the shard's keyword-presence prefilter as a sixth checksummed section,
// so a loaded or delta-patched shard answers skip probes without touching
// its postings (older images build the filter lazily). Sharded corpora
// persist as one packed image per shard behind a thin frame (magic
// "XTSH") and reload in parallel.
//
// # Perf trajectory and CI gate
//
// `go run ./cmd/benchrunner -search BENCH_search.json` regenerates the
// hot-path before/after trajectory (the retained *Baseline implementations
// are the "before" side); `-persist` does the same for the persist-load
// trajectory, `-serve` for the serving-layer cold/warm QPS trajectory,
// `-reload` for the full-versus-delta refresh trajectory, and
// `-baseline` compares a fresh run against the committed file, failing on
// >20% regression of QueryEndToEnd, of the packed load's advantage, of
// the warm/cold throughput ratio, of the warm-p99 tail ratio (warm p99
// over the same run's cold median — the serving layer's tail-latency
// guarantee, measured from runs re-run until consecutive p99s agree), of
// the cold-path throughput (cold QPS normalized by the same run's
// frozen-SLCA yardstick, so a regression that slows cold and warm
// together cannot hide behind a flat warm/cold ratio), or of the
// delta-reload speedup (machine-normalized ratios; see
// bench.CompareReports). CI runs lint (vet + staticcheck) before
// build/test, the race detector, fuzz smokes for the persist decoder,
// XML parser, query-cache key codec, snapshot-manifest decoder and the
// galloping-search cursor, the
// telemetry documentation gates (every exported internal/telemetry
// identifier commented; OBSERVABILITY.md diffed against the live
// registry), the bench-regression gate, the serve-throughput +
// tail-latency gate and the reload gate on every PR, with Go module and
// build caches shared across jobs.
//
// # Further reading
//
// ARCHITECTURE.md at the repository root is the layer-by-layer tour —
// xmltree up through index, search, snippet generation, shard, ingest,
// persist, serve and this facade — with request-lifecycle walkthroughs of
// a cached sharded query (annotated with the telemetry stage on the
// clock at each step), an online reload and a delta reload.
// PERFORMANCE.md is the cold-path performance model — the stage cost
// breakdown, the prefilter/galloping/early-termination designs with their
// measured crossover constants, and how to read and regenerate
// BENCH_search.json. OBSERVABILITY.md is the operator-facing metric
// reference — every
// metric's name, labels, units and what a spike means, plus the
// slow-query log schema and an SLO worked example. cmd/extractd/README.md
// documents the demo server's flags and endpoints, including snapshot
// (.xtsnap) datasets, the /metrics scrape and a curl-based triage
// runbook.
package extract
