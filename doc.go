// Package extract is a Go implementation of eXtract, the snippet generation
// system for XML keyword search of Huang, Liu and Chen (VLDB 2008).
//
// Given an XML database, a keyword query and a snippet size bound, eXtract
// produces for every query result a small snippet tree that is:
//
//   - self-contained: it names the entities the result is about,
//   - distinguishable: it carries the result's key (the key attribute value
//     of the result's return entity), like a document title,
//   - representative: it shows the result's dominant features, values whose
//     normalized frequency (dominance score) exceeds their type's average,
//   - small: its edge count never exceeds the bound.
//
// The typical flow:
//
//	corpus, err := extract.LoadFile("retailers.xml")
//	if err != nil { ... }
//	hits, err := corpus.Query("Texas apparel retailer", 10)
//	for _, h := range hits {
//		fmt.Println(h.Snippet.Render())
//	}
//
// Query evaluation (SLCA/ELCA keyword search with XSeek-style result
// construction) is built in, but snippets can also be generated for result
// trees produced elsewhere via Corpus.SnippetForTree — snippet generation
// is orthogonal to the search engine, as in the paper.
package extract
