// Package extract is a Go implementation of eXtract, the snippet generation
// system for XML keyword search of Huang, Liu and Chen (VLDB 2008).
//
// Given an XML database, a keyword query and a snippet size bound, eXtract
// produces for every query result a small snippet tree that is:
//
//   - self-contained: it names the entities the result is about,
//   - distinguishable: it carries the result's key (the key attribute value
//     of the result's return entity), like a document title,
//   - representative: it shows the result's dominant features, values whose
//     normalized frequency (dominance score) exceeds their type's average,
//   - small: its edge count never exceeds the bound.
//
// The typical flow:
//
//	corpus, err := extract.LoadFile("retailers.xml")
//	if err != nil { ... }
//	hits, err := corpus.Query("Texas apparel retailer", 10)
//	for _, h := range hits {
//		fmt.Println(h.Snippet.Render())
//	}
//
// Query evaluation (SLCA/ELCA keyword search with XSeek-style result
// construction) is built in, but snippets can also be generated for result
// trees produced elsewhere via Corpus.SnippetForTree — snippet generation
// is orthogonal to the search engine, as in the paper.
//
// # Hot-path architecture
//
// The search→snippet path works on flat integer arrays rather than
// pointers and string keys:
//
//   - xmltree assigns every node a preorder interval (Start, End int32) at
//     finalize time, so ancestor/descendant tests are two integer compares
//     (Node.Contains); Dewey identifiers remain for LCA depths and
//     rendering.
//   - internal/index stores each posting list as parallel slices
//     (Ords/Nodes/Fields), keeping document-order positions in one
//     contiguous int32 array for binary searches and merge scans.
//   - internal/search computes SLCA by a depth-folding merge over the
//     packed lists with a linear stack filter, and ELCA by exclusive
//     counting over the match virtual tree with pooled scratch.
//   - internal/classify interns element labels to dense ids;
//     internal/features collects statistics in one walk into id-indexed
//     slices keyed by packed integers, with collectors reused across
//     results (core.Generator pools them).
//
// # Perf trajectory
//
// `go run ./cmd/benchrunner -search BENCH_search.json` regenerates the
// hot-path before/after trajectory (the retained *Baseline implementations
// are the "before" side); BenchmarkQueryEndToEnd tracks the full pipeline.
// Future performance PRs should re-run the suite and compare against the
// committed BENCH_search.json.
package extract
