package extract

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestXPathSelection(t *testing.T) {
	c, err := LoadString(`
<retailers>
  <retailer><name>Brook Brothers</name>
    <store><city>Houston</city></store>
    <store><city>Austin</city></store>
  </retailer>
  <retailer><name>Levis</name>
    <store><city>Fresno</city></store>
  </retailer>
</retailers>`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.XPath(`//retailer[store/city='Houston']`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	// The selected subtree feeds the snippet generator like any result.
	s := c.Snippet(rs[0], "houston retailer", 4)
	if s.ResultKey() != "Brook Brothers" {
		t.Errorf("key = %q", s.ResultKey())
	}
	if !strings.Contains(s.Inline(), "Houston") {
		t.Errorf("snippet = %s", s.Inline())
	}
	// Bad expression surfaces the compile error.
	if _, err := c.XPath(`[[`); err == nil {
		t.Error("bad xpath accepted")
	}
	// Text selections are skipped.
	rs, err = c.XPath(`//city/text()`)
	if err != nil || len(rs) != 0 {
		t.Errorf("text selection = %d (%v)", len(rs), err)
	}
}

func TestSuggest(t *testing.T) {
	c, err := LoadString(`
<shops>
  <shop><city>Houston</city></shop>
  <shop><city>Houston</city></shop>
  <shop><city>Hopeville</city></shop>
  <shop><city>Austin</city></shop>
</shops>`)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Suggest("ho", 5)
	if len(got) != 2 || got[0] != "houston" || got[1] != "hopeville" {
		t.Errorf("Suggest(ho) = %v", got)
	}
	if got := c.Suggest("ho", 1); len(got) != 1 || got[0] != "houston" {
		t.Errorf("Suggest k=1 = %v", got)
	}
	if got := c.Suggest("zz", 5); len(got) != 0 {
		t.Errorf("Suggest(zz) = %v", got)
	}
	if got := c.Suggest("two words", 5); got != nil {
		t.Errorf("multi-token prefix = %v", got)
	}
}

func TestLoadFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xml")
	b := filepath.Join(dir, "b.xml")
	if err := os.WriteFile(a, []byte(`<movies><movie><title>A</title></movie><movie><title>B</title></movie></movies>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`<stores><store><name>S1</name></store><store><name>S2</name></store></stores>`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadFiles([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ents := c.Stats().Entities
	if strings.Join(ents, ",") != "movie,store" {
		t.Errorf("entities = %v", ents)
	}
	hits, err := c.Query("title a", 3)
	if err != nil || len(hits) != 1 {
		t.Fatalf("cross-file query: %d (%v)", len(hits), err)
	}
	if _, err := LoadFiles(nil); err == nil {
		t.Error("empty path list accepted")
	}
	if _, err := LoadFiles([]string{filepath.Join(dir, "missing.xml")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDiversify(t *testing.T) {
	// Ten identical stores and one different: at a tiny bound the ten
	// collapse into one group.
	var b strings.Builder
	b.WriteString("<stores>")
	for i := 0; i < 10; i++ {
		b.WriteString(`<store><state>Texas</state><merchandises><clothes><category>jeans</category></clothes></merchandises></store>`)
	}
	b.WriteString(`<store><state>Texas</state><merchandises><clothes><category>suit</category></clothes></merchandises></store>`)
	b.WriteString("</stores>")
	c, err := LoadString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	// Bound 4 fits the distinguishing category (jeans vs suit); the ten
	// identical stores still collapse.
	hits, err := c.Query("store texas", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 11 {
		t.Fatalf("hits = %d", len(hits))
	}
	groups := Diversify(hits)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Count+groups[1].Count != 11 {
		t.Errorf("counts = %d + %d", groups[0].Count, groups[1].Count)
	}
	if groups[0].Count != 10 && groups[1].Count != 10 {
		t.Errorf("no group of 10: %d/%d", groups[0].Count, groups[1].Count)
	}
	if groups[0].Hit == nil || len(groups[0].Hits) != groups[0].Count {
		t.Error("group membership inconsistent")
	}
}
